//! Decoding: streaming [`TraceReader`] and [`SlabReader`] plus
//! whole-buffer/file helpers.

use crate::format::{
    fingerprint64, tag, FormatVersion, TraceError, TraceErrorKind, TraceMeta, TraceRecord,
    FORMAT_VERSION, MAGIC, MIN_FORMAT_VERSION,
};
use crate::slab::{decode_block_into, EventSlab};
use crate::varint;
use ddrace_program::{Addr, BarrierId, LockId, Op, SemId, ThreadId, TraceEvent};
use std::io::Read;
use std::path::Path;

/// How many version-1 records a [`SlabReader`] batches per slab. One
/// version-2 block holds roughly this many records at default block
/// size, so both versions hand the detector similar batch grain.
const V1_SLAB_RECORDS: usize = 8 * 1024;

/// Payload bytes read per chunk while filling a block buffer, so a
/// corrupt frame declaring a huge length hits `Truncated` at the real
/// EOF instead of pre-allocating the lie.
const PAYLOAD_CHUNK: usize = 64 * 1024;

/// The shared decode state under both readers: the byte source, the
/// running offset, and the parsed header.
struct Decoder<R: Read> {
    input: R,
    offset: u64,
    meta: TraceMeta,
    version: FormatVersion,
}

impl<R: Read> Decoder<R> {
    fn new(input: R) -> Result<Decoder<R>, TraceError> {
        let mut d = Decoder {
            input,
            offset: 0,
            meta: TraceMeta {
                source: String::new(),
                label: String::new(),
                seed: 0,
                fingerprint: 0,
            },
            version: FormatVersion::V1,
        };
        d.read_header()?;
        Ok(d)
    }

    fn read_header(&mut self) -> Result<(), TraceError> {
        let mut magic = [0u8; 8];
        self.read_exact(&mut magic)?;
        if magic != MAGIC {
            return Err(TraceError::new(0, TraceErrorKind::BadMagic));
        }
        let mut version = [0u8; 4];
        self.read_exact(&mut version)?;
        let version = u32::from_le_bytes(version);
        self.version = FormatVersion::from_number(version).ok_or_else(|| {
            debug_assert!(!(MIN_FORMAT_VERSION..=FORMAT_VERSION).contains(&version));
            TraceError::new(8, TraceErrorKind::UnsupportedVersion { found: version })
        })?;
        self.meta.seed = self.read_varint()?;
        self.meta.fingerprint = self.read_varint()?;
        self.meta.source = self.read_string()?;
        self.meta.label = self.read_string()?;
        // Reserved key/value pairs: ignored by current readers so a
        // same-version writer may annotate without breaking anyone.
        let reserved = self.read_varint()?;
        for _ in 0..reserved {
            self.read_string()?;
            self.read_string()?;
        }
        Ok(())
    }

    /// Fills `buf` with bulk reads (never consuming past its length).
    /// EOF mid-fill is [`TraceErrorKind::Truncated`] at the offset where
    /// the bytes ran out, exactly as byte-at-a-time reads would report.
    fn read_exact(&mut self, buf: &mut [u8]) -> Result<(), TraceError> {
        let mut filled = 0;
        while filled < buf.len() {
            match self.input.read(&mut buf[filled..]) {
                Ok(0) => {
                    return Err(TraceError::new(self.offset, TraceErrorKind::Truncated));
                }
                Ok(n) => {
                    filled += n;
                    self.offset += n as u64;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    return Err(TraceError::new(
                        self.offset,
                        TraceErrorKind::Io(e.to_string()),
                    ))
                }
            }
        }
        Ok(())
    }

    /// One byte, or `None` at a clean EOF.
    fn next_byte(&mut self) -> Result<Option<u8>, TraceError> {
        let mut byte = [0u8; 1];
        loop {
            match self.input.read(&mut byte) {
                Ok(0) => return Ok(None),
                Ok(_) => {
                    self.offset += 1;
                    return Ok(Some(byte[0]));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    return Err(TraceError::new(
                        self.offset,
                        TraceErrorKind::Io(e.to_string()),
                    ))
                }
            }
        }
    }

    /// One byte, where EOF means the input was truncated.
    fn need_byte(&mut self) -> Result<u8, TraceError> {
        self.next_byte()?
            .ok_or_else(|| TraceError::new(self.offset, TraceErrorKind::Truncated))
    }

    fn read_varint(&mut self) -> Result<u64, TraceError> {
        let first = self.need_byte()?;
        self.read_varint_cont(first)
    }

    /// The rest of a varint whose first byte is already consumed.
    fn read_varint_cont(&mut self, first: u8) -> Result<u64, TraceError> {
        let start = self.offset - 1;
        let mut buf = [0u8; varint::MAX_LEN];
        buf[0] = first;
        if first & 0x80 == 0 {
            return Ok(u64::from(first));
        }
        for i in 1..varint::MAX_LEN {
            buf[i] = self.need_byte()?;
            if buf[i] & 0x80 == 0 {
                return varint::decode(&buf[..=i])
                    .map(|(v, _)| v)
                    .ok_or_else(|| TraceError::new(start, TraceErrorKind::BadVarint));
            }
        }
        Err(TraceError::new(start, TraceErrorKind::BadVarint))
    }

    fn read_u32(&mut self, field: &'static str) -> Result<u32, TraceError> {
        let start = self.offset;
        let value = self.read_varint()?;
        u32::try_from(value).map_err(|_| TraceError::new(start, TraceErrorKind::FieldRange(field)))
    }

    fn read_string(&mut self) -> Result<String, TraceError> {
        let len = self.read_varint()?;
        let start = self.offset;
        let len = usize::try_from(len)
            .map_err(|_| TraceError::new(start, TraceErrorKind::FieldRange("string length")))?;
        let mut bytes = vec![0u8; len];
        self.read_exact(&mut bytes)?;
        String::from_utf8(bytes).map_err(|_| TraceError::new(start, TraceErrorKind::BadString))
    }

    /// One version-1 record, or `None` at a clean end of stream.
    fn read_record(&mut self) -> Result<Option<TraceRecord>, TraceError> {
        let Some(tag_byte) = self.next_byte()? else {
            return Ok(None); // clean end of stream
        };
        let tag_offset = self.offset - 1;
        let record = match tag_byte {
            tag::THREAD_STARTED => {
                let tid = ThreadId(self.read_u32("tid")?);
                let parent = match self.read_varint()? {
                    0 => None,
                    biased => Some(ThreadId(u32::try_from(biased - 1).map_err(|_| {
                        TraceError::new(tag_offset, TraceErrorKind::FieldRange("parent"))
                    })?)),
                };
                TraceRecord::Exec(TraceEvent::ThreadStarted { tid, parent })
            }
            tag::THREAD_FINISHED => TraceRecord::Exec(TraceEvent::ThreadFinished {
                tid: ThreadId(self.read_u32("tid")?),
            }),
            tag::BARRIER_RELEASED => {
                let barrier = BarrierId(self.read_u32("barrier")?);
                let count = self.read_varint()?;
                let mut participants = Vec::with_capacity(count.min(1024) as usize);
                for _ in 0..count {
                    participants.push(ThreadId(self.read_u32("participant")?));
                }
                TraceRecord::Exec(TraceEvent::BarrierReleased {
                    barrier,
                    participants,
                })
            }
            tag::HITM => TraceRecord::Hitm {
                core: self.read_u32("core")?,
                line: self.read_varint()?,
                skid: self.read_u32("skid")?,
            },
            op_tag @ tag::OP_READ..=tag::OP_COMPUTE => {
                let tid = ThreadId(self.read_u32("tid")?);
                let op = match op_tag {
                    tag::OP_READ => Op::Read {
                        addr: Addr(self.read_varint()?),
                    },
                    tag::OP_WRITE => Op::Write {
                        addr: Addr(self.read_varint()?),
                    },
                    tag::OP_ATOMIC_RMW => Op::AtomicRmw {
                        addr: Addr(self.read_varint()?),
                    },
                    tag::OP_LOCK => Op::Lock {
                        lock: LockId(self.read_u32("lock")?),
                    },
                    tag::OP_UNLOCK => Op::Unlock {
                        lock: LockId(self.read_u32("lock")?),
                    },
                    tag::OP_BARRIER => Op::Barrier {
                        barrier: BarrierId(self.read_u32("barrier")?),
                        participants: self.read_u32("participants")?,
                    },
                    tag::OP_FORK => Op::Fork {
                        child: ThreadId(self.read_u32("child")?),
                    },
                    tag::OP_JOIN => Op::Join {
                        child: ThreadId(self.read_u32("child")?),
                    },
                    tag::OP_POST => Op::Post {
                        sem: SemId(self.read_u32("sem")?),
                    },
                    tag::OP_WAIT_SEM => Op::WaitSem {
                        sem: SemId(self.read_u32("sem")?),
                    },
                    _ => Op::Compute {
                        cycles: self.read_u32("cycles")?,
                    },
                };
                TraceRecord::Exec(TraceEvent::Op { tid, op })
            }
            unknown => return Err(TraceError::new(tag_offset, TraceErrorKind::BadTag(unknown))),
        };
        Ok(Some(record))
    }

    /// Reads and verifies one version-2 block frame into `payload`,
    /// returning the frame's declared event count and the payload's file
    /// offset, or `None` at a clean EOF (which is only clean exactly at
    /// a frame boundary).
    fn read_block(&mut self, payload: &mut Vec<u8>) -> Result<Option<(u64, u64)>, TraceError> {
        let frame_start = self.offset;
        let Some(first) = self.next_byte()? else {
            return Ok(None); // clean end of stream
        };
        let count = self.read_varint_cont(first)?;
        let len_field = self.offset;
        let len = self.read_varint()?;
        let len = usize::try_from(len)
            .map_err(|_| TraceError::new(len_field, TraceErrorKind::FieldRange("block length")))?;
        let mut checksum = [0u8; 8];
        self.read_exact(&mut checksum)?;
        let checksum = u64::from_le_bytes(checksum);
        let payload_base = self.offset;
        payload.clear();
        // Chunked fill: a frame lying about its length runs into EOF (a
        // positioned Truncated) instead of a giant up-front allocation.
        while payload.len() < len {
            let chunk = (len - payload.len()).min(PAYLOAD_CHUNK);
            let start = payload.len();
            payload.resize(start + chunk, 0);
            self.read_exact(&mut payload[start..])?;
        }
        if fingerprint64(payload) != checksum {
            return Err(TraceError::new(
                frame_start,
                TraceErrorKind::BadBlock("checksum mismatch"),
            ));
        }
        Ok(Some((count, payload_base)))
    }
}

/// Decodes one already-verified block into `slab`, enforcing the
/// frame's declared event count.
fn decode_block(
    slab: &mut EventSlab,
    payload: &[u8],
    count: u64,
    payload_base: u64,
) -> Result<(), TraceError> {
    let before = slab.len() as u64;
    decode_block_into(payload, payload_base, slab)?;
    if slab.len() as u64 - before != count {
        return Err(TraceError::new(
            frame_start_of(payload_base, count, payload.len()),
            TraceErrorKind::BadBlock("event count mismatch"),
        ));
    }
    Ok(())
}

/// The file offset of a block's frame, recovered from its payload
/// offset and the frame fields (count varint + length varint + 8-byte
/// checksum precede the payload).
fn frame_start_of(payload_base: u64, count: u64, payload_len: usize) -> u64 {
    payload_base
        - 8
        - varint::encoded_len(payload_len as u64) as u64
        - varint::encoded_len(count) as u64
}

/// Streaming `.ddt` decoder over any [`Read`] source.
///
/// Construction parses and validates the header; the reader then
/// iterates records one at a time without materialising the stream,
/// so corpora larger than memory ingest fine. Both format versions
/// decode behind the same iterator: version 1 straight off the byte
/// stream, version 2 block by block through an internal slab. Every
/// failure carries the byte offset where decoding stopped (see
/// [`TraceError`]).
///
/// Version-1 reads are byte-at-a-time against the source — hand it a
/// `BufReader` (or a slice) rather than a bare `File`.
pub struct TraceReader<R: Read> {
    decoder: Decoder<R>,
    /// Version 2 only: the current block's records and read cursor.
    slab: EventSlab,
    cursor: usize,
    payload: Vec<u8>,
    done: bool,
}

impl<R: Read> TraceReader<R> {
    /// Parses the header from `input` and returns the reader.
    ///
    /// # Errors
    ///
    /// [`TraceErrorKind::BadMagic`] / [`TraceErrorKind::UnsupportedVersion`]
    /// for foreign or future files; [`TraceErrorKind::Truncated`] and
    /// friends for corrupt headers.
    pub fn new(input: R) -> Result<TraceReader<R>, TraceError> {
        Ok(TraceReader {
            decoder: Decoder::new(input)?,
            slab: EventSlab::new(),
            cursor: 0,
            payload: Vec::new(),
            done: false,
        })
    }

    /// The identity header this trace was recorded with.
    pub fn meta(&self) -> &TraceMeta {
        &self.decoder.meta
    }

    /// The format version the file declares.
    pub fn version(&self) -> FormatVersion {
        self.decoder.version
    }

    /// Bytes consumed so far (header included).
    pub fn offset(&self) -> u64 {
        self.decoder.offset
    }

    fn next_record(&mut self) -> Result<Option<TraceRecord>, TraceError> {
        match self.decoder.version {
            FormatVersion::V1 => self.decoder.read_record(),
            FormatVersion::V2 => {
                while self.cursor >= self.slab.len() {
                    let Some((count, payload_base)) = self.decoder.read_block(&mut self.payload)?
                    else {
                        return Ok(None);
                    };
                    self.slab.clear();
                    self.cursor = 0;
                    decode_block(&mut self.slab, &self.payload, count, payload_base)?;
                }
                let record = self.slab.record(self.cursor);
                self.cursor += 1;
                Ok(Some(record))
            }
        }
    }
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = Result<TraceRecord, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        match self.next_record() {
            Ok(Some(record)) => Some(Ok(record)),
            Ok(None) => {
                self.done = true;
                None
            }
            Err(e) => {
                self.done = true;
                Some(Err(e))
            }
        }
    }
}

/// Streaming slab-granularity `.ddt` decoder: the ingest hot path.
///
/// Instead of yielding one enum value per record, [`SlabReader::read_slab`]
/// refills a caller-owned [`EventSlab`] with the next batch — one whole
/// block for version-2 files, up to a fixed record budget for version-1
/// files — recycling the slab's allocations across calls. The caller
/// drains the slab (borrowed events, no materialisation) and hands it
/// back for the next refill, which is what lets a decoder thread and a
/// detector thread double-buffer.
pub struct SlabReader<R: Read> {
    decoder: Decoder<R>,
    payload: Vec<u8>,
    done: bool,
}

impl<R: Read> SlabReader<R> {
    /// Parses the header from `input` and returns the reader.
    ///
    /// # Errors
    ///
    /// Same as [`TraceReader::new`].
    pub fn new(input: R) -> Result<SlabReader<R>, TraceError> {
        Ok(SlabReader {
            decoder: Decoder::new(input)?,
            payload: Vec::new(),
            done: false,
        })
    }

    /// The identity header this trace was recorded with.
    pub fn meta(&self) -> &TraceMeta {
        &self.decoder.meta
    }

    /// The format version the file declares.
    pub fn version(&self) -> FormatVersion {
        self.decoder.version
    }

    /// Clears `slab` and refills it with the next batch of records.
    /// Returns `false` (slab left empty) at a clean end of stream.
    ///
    /// # Errors
    ///
    /// Any positioned [`TraceError`]; after an error the reader is done.
    pub fn read_slab(&mut self, slab: &mut EventSlab) -> Result<bool, TraceError> {
        slab.clear();
        if self.done {
            return Ok(false);
        }
        let result = self.fill_slab(slab);
        match &result {
            Ok(true) => {}
            Ok(false) | Err(_) => self.done = true,
        }
        result
    }

    fn fill_slab(&mut self, slab: &mut EventSlab) -> Result<bool, TraceError> {
        match self.decoder.version {
            FormatVersion::V1 => {
                while slab.len() < V1_SLAB_RECORDS {
                    match self.decoder.read_record()? {
                        Some(record) => slab.push_record(&record),
                        None => break,
                    }
                }
                Ok(!slab.is_empty())
            }
            FormatVersion::V2 => {
                let Some((count, payload_base)) = self.decoder.read_block(&mut self.payload)?
                else {
                    return Ok(false);
                };
                decode_block(slab, &self.payload, count, payload_base)?;
                Ok(true)
            }
        }
    }
}

/// Decodes a whole in-memory buffer into its header and record list.
///
/// # Errors
///
/// Any [`TraceError`] the streaming reader would produce.
pub fn decode_trace(bytes: &[u8]) -> Result<(TraceMeta, Vec<TraceRecord>), TraceError> {
    let reader = TraceReader::new(bytes)?;
    let meta = reader.meta().clone();
    let records = reader.collect::<Result<Vec<_>, _>>()?;
    Ok((meta, records))
}

/// Reads a whole trace file.
///
/// # Errors
///
/// I/O failures surface as [`TraceErrorKind::Io`]; decode failures as
/// the corresponding [`TraceError`].
pub fn read_trace_file(
    path: impl AsRef<Path>,
) -> Result<(TraceMeta, Vec<TraceRecord>), TraceError> {
    let file = open(path.as_ref())?;
    let reader = TraceReader::new(std::io::BufReader::new(file))?;
    let meta = reader.meta().clone();
    let records = reader.collect::<Result<Vec<_>, _>>()?;
    Ok((meta, records))
}

/// Opens a trace file at slab granularity for streaming ingest.
///
/// # Errors
///
/// Same as [`read_trace_file`], for the header portion.
pub fn open_trace_file(
    path: impl AsRef<Path>,
) -> Result<SlabReader<std::io::BufReader<std::fs::File>>, TraceError> {
    let file = open(path.as_ref())?;
    SlabReader::new(std::io::BufReader::new(file))
}

/// Reads only the header of a trace file — what ingest needs to build
/// job fingerprints for a corpus without touching the event streams.
///
/// The file is read unbuffered, byte by byte, so exactly the header
/// bytes are consumed — a corpus-wide metadata sweep never pulls event
/// blocks through the page cache.
///
/// # Errors
///
/// Same as [`read_trace_file`], for the header portion.
pub fn read_meta(path: impl AsRef<Path>) -> Result<TraceMeta, TraceError> {
    let file = open(path.as_ref())?;
    Ok(Decoder::new(file)?.meta)
}

fn open(path: &Path) -> Result<std::fs::File, TraceError> {
    std::fs::File::open(path).map_err(|e| {
        TraceError::new(
            0,
            TraceErrorKind::Io(format!("cannot open {}: {e}", path.display())),
        )
    })
}
