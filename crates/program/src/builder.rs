//! Fluent construction of small, explicit programs for tests and examples.
//!
//! Workload generators build [`crate::OpStream`]s directly; the builder is
//! for hand-written scenarios where every operation is spelled out.
//!
//! # Examples
//!
//! A two-thread program with a racy write/read pair:
//!
//! ```
//! use ddrace_program::{ProgramBuilder, ThreadId};
//!
//! let mut b = ProgramBuilder::new();
//! let x = b.alloc_shared(8).base();
//! let worker = b.add_thread();
//! b.on(ThreadId::MAIN).fork(worker).write(x).join(worker);
//! b.on(worker).read(x);
//! let program = b.build();
//! assert_eq!(program.thread_count(), 2);
//! ```

use crate::address::{AddressSpace, Region};
use crate::op::{Addr, BarrierId, LockId, Op, SemId, ThreadId};
use crate::program::{Program, StartMode};

/// Incrementally constructs a [`Program`] plus the ids and regions it uses.
#[derive(Debug)]
pub struct ProgramBuilder {
    threads: Vec<Vec<Op>>,
    space: AddressSpace,
    next_lock: u32,
    next_barrier: u32,
    next_sem: u32,
    start_mode: StartMode,
}

impl ProgramBuilder {
    /// Creates a builder with only the main thread, in
    /// [`StartMode::ForkExplicit`].
    pub fn new() -> Self {
        ProgramBuilder {
            threads: vec![Vec::new()],
            space: AddressSpace::new(),
            next_lock: 0,
            next_barrier: 0,
            next_sem: 0,
            start_mode: StartMode::ForkExplicit,
        }
    }

    /// Switches the program to [`StartMode::AllStart`], so threads need no
    /// explicit forks (the scheduler synthesizes creation edges).
    pub fn all_start(&mut self) -> &mut Self {
        self.start_mode = StartMode::AllStart;
        self
    }

    /// Adds a new (initially empty) thread and returns its id.
    pub fn add_thread(&mut self) -> ThreadId {
        self.threads.push(Vec::new());
        ThreadId::new((self.threads.len() - 1) as u32)
    }

    /// Allocates a shared data region of `len` bytes.
    pub fn alloc_shared(&mut self, len: u64) -> Region {
        self.space.alloc_region(len)
    }

    /// Allocates a private data region for `thread` of `len` bytes.
    pub fn alloc_private(&mut self, thread: ThreadId, len: u64) -> Region {
        self.space.alloc_private(thread, len)
    }

    /// Creates a fresh lock id.
    pub fn new_lock(&mut self) -> LockId {
        let id = LockId::new(self.next_lock);
        self.next_lock += 1;
        id
    }

    /// Creates a fresh barrier id.
    pub fn new_barrier(&mut self) -> BarrierId {
        let id = BarrierId::new(self.next_barrier);
        self.next_barrier += 1;
        id
    }

    /// Creates a fresh semaphore id.
    pub fn new_sem(&mut self) -> SemId {
        let id = SemId::new(self.next_sem);
        self.next_sem += 1;
        id
    }

    /// Returns a cursor appending operations to `thread`'s body.
    ///
    /// # Panics
    ///
    /// Panics if `thread` was not created by this builder.
    pub fn on(&mut self, thread: ThreadId) -> ThreadCursor<'_> {
        assert!(
            thread.index() < self.threads.len(),
            "thread {thread} does not exist in this builder"
        );
        ThreadCursor {
            builder: self,
            thread,
        }
    }

    /// Number of threads added so far (including main).
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// Finishes construction and returns the program.
    pub fn build(self) -> Program {
        Program::from_thread_vecs(self.threads, self.start_mode)
    }
}

impl Default for ProgramBuilder {
    fn default() -> Self {
        Self::new()
    }
}

/// Appends operations to one thread's body. Returned by
/// [`ProgramBuilder::on`]; methods chain.
#[derive(Debug)]
pub struct ThreadCursor<'a> {
    builder: &'a mut ProgramBuilder,
    thread: ThreadId,
}

impl ThreadCursor<'_> {
    fn push(self, op: Op) -> Self {
        self.builder.threads[self.thread.index()].push(op);
        self
    }

    /// Appends a load from `addr`.
    pub fn read(self, addr: Addr) -> Self {
        self.push(Op::Read { addr })
    }

    /// Appends a store to `addr`.
    pub fn write(self, addr: Addr) -> Self {
        self.push(Op::Write { addr })
    }

    /// Appends an atomic read-modify-write on `addr`.
    pub fn atomic_rmw(self, addr: Addr) -> Self {
        self.push(Op::AtomicRmw { addr })
    }

    /// Appends a lock acquisition.
    pub fn lock(self, lock: LockId) -> Self {
        self.push(Op::Lock { lock })
    }

    /// Appends a lock release.
    pub fn unlock(self, lock: LockId) -> Self {
        self.push(Op::Unlock { lock })
    }

    /// Appends a barrier arrival for a barrier of `participants` threads.
    pub fn barrier(self, barrier: BarrierId, participants: u32) -> Self {
        self.push(Op::Barrier {
            barrier,
            participants,
        })
    }

    /// Appends a fork of `child`.
    pub fn fork(self, child: ThreadId) -> Self {
        self.push(Op::Fork { child })
    }

    /// Appends a join of `child`.
    pub fn join(self, child: ThreadId) -> Self {
        self.push(Op::Join { child })
    }

    /// Appends a semaphore post.
    pub fn post(self, sem: SemId) -> Self {
        self.push(Op::Post { sem })
    }

    /// Appends a semaphore wait.
    pub fn wait_sem(self, sem: SemId) -> Self {
        self.push(Op::WaitSem { sem })
    }

    /// Appends pure computation of `cycles` cycles.
    pub fn compute(self, cycles: u32) -> Self {
        self.push(Op::Compute { cycles })
    }

    /// Appends an arbitrary operation.
    pub fn op(self, op: Op) -> Self {
        self.push(op)
    }

    /// Appends a whole sequence of operations.
    pub fn ops<I: IntoIterator<Item = Op>>(self, ops: I) -> Self {
        let mut cursor = self;
        for op in ops {
            cursor = cursor.push(op);
        }
        cursor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_constructs_expected_bodies() {
        let mut b = ProgramBuilder::new();
        let x = b.alloc_shared(64).base();
        let l = b.new_lock();
        let t1 = b.add_thread();
        b.on(ThreadId::MAIN)
            .fork(t1)
            .lock(l)
            .write(x)
            .unlock(l)
            .join(t1);
        b.on(t1).lock(l).read(x).unlock(l);
        let program = b.build();
        assert_eq!(program.thread_count(), 2);
        let (mut streams, mode) = program.into_parts();
        assert_eq!(mode, StartMode::ForkExplicit);
        assert_eq!(streams[0].next_op(), Some(Op::Fork { child: t1 }));
        assert_eq!(streams[0].next_op(), Some(Op::Lock { lock: l }));
        assert_eq!(streams[0].next_op(), Some(Op::Write { addr: x }));
        assert_eq!(streams[1].next_op(), Some(Op::Lock { lock: l }));
    }

    #[test]
    fn ids_are_fresh() {
        let mut b = ProgramBuilder::new();
        assert_ne!(b.new_lock(), b.new_lock());
        assert_ne!(b.new_barrier(), b.new_barrier());
        assert_ne!(b.new_sem(), b.new_sem());
        assert_ne!(b.add_thread(), b.add_thread());
        assert_eq!(b.thread_count(), 3);
    }

    #[test]
    fn all_start_mode_propagates() {
        let mut b = ProgramBuilder::new();
        b.all_start();
        b.add_thread();
        let p = b.build();
        assert_eq!(p.start_mode(), StartMode::AllStart);
    }

    #[test]
    fn regions_from_builder_do_not_overlap() {
        let mut b = ProgramBuilder::new();
        let t1 = b.add_thread();
        let shared = b.alloc_shared(256);
        let private = b.alloc_private(t1, 256);
        assert!(!shared.contains(private.base()));
        assert!(!private.contains(shared.base()));
    }

    #[test]
    #[should_panic(expected = "does not exist")]
    fn cursor_on_unknown_thread_panics() {
        let mut b = ProgramBuilder::new();
        let _ = b.on(ThreadId::new(5));
    }

    #[test]
    fn ops_bulk_append() {
        let mut b = ProgramBuilder::new();
        b.on(ThreadId::MAIN)
            .ops((0..4).map(|i| Op::Compute { cycles: i }))
            .op(Op::Read { addr: Addr(8) });
        let (mut streams, _) = b.build().into_parts();
        for i in 0..4 {
            assert_eq!(streams[0].next_op(), Some(Op::Compute { cycles: i }));
        }
        assert_eq!(streams[0].next_op(), Some(Op::Read { addr: Addr(8) }));
        assert_eq!(streams[0].next_op(), None);
    }
}
