//! Core vocabulary types: thread ids, addresses, synchronization object ids,
//! and the operations a simulated thread can perform.

use std::fmt;

/// Identifier of a simulated thread.
///
/// Thread 0 is always the root ("main") thread. Thread ids are dense: a
/// program with `n` threads uses ids `0..n`.
///
/// # Examples
///
/// ```
/// use ddrace_program::ThreadId;
/// let main = ThreadId::MAIN;
/// assert_eq!(main.index(), 0);
/// assert_eq!(ThreadId::new(3).index(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThreadId(pub u32);

impl ThreadId {
    /// The root thread: the thread that exists when the program starts.
    pub const MAIN: ThreadId = ThreadId(0);

    /// Creates a thread id from a dense index.
    pub fn new(index: u32) -> Self {
        ThreadId(index)
    }

    /// Returns the dense index of this thread id.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl From<u32> for ThreadId {
    fn from(v: u32) -> Self {
        ThreadId(v)
    }
}

/// A byte address in the simulated program's flat address space.
///
/// The simulator does not model virtual memory; addresses are opaque `u64`
/// values. Helpers on [`crate::AddressSpace`] carve the space into
/// non-overlapping regions (per-thread private heaps, shared heaps, and a
/// region reserved for synchronization objects).
///
/// # Examples
///
/// ```
/// use ddrace_program::Addr;
/// let a = Addr(0x1000);
/// assert_eq!(a.line(64), 0x40);
/// assert_eq!(a.offset(8), Addr(0x1008));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub u64);

impl Addr {
    /// Returns the cache-line index of this address for the given line size.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `line_size` is not a power of two.
    pub fn line(self, line_size: u64) -> u64 {
        debug_assert!(
            line_size.is_power_of_two(),
            "line size must be a power of two"
        );
        self.0 / line_size
    }

    /// Returns this address advanced by `bytes`.
    pub fn offset(self, bytes: u64) -> Addr {
        Addr(self.0 + bytes)
    }

    /// Returns this address rounded down to the start of its cache line.
    pub fn align_down(self, line_size: u64) -> Addr {
        Addr(self.0 & !(line_size - 1))
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}

impl From<u64> for Addr {
    fn from(v: u64) -> Self {
        Addr(v)
    }
}

/// Identifier of a lock (mutex) object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LockId(pub u32);

impl LockId {
    /// Creates a lock id.
    pub fn new(index: u32) -> Self {
        LockId(index)
    }

    /// Returns the dense index of this lock id.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// Identifier of a barrier object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BarrierId(pub u32);

impl BarrierId {
    /// Creates a barrier id.
    pub fn new(index: u32) -> Self {
        BarrierId(index)
    }

    /// Returns the dense index of this barrier id.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BarrierId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{}", self.0)
    }
}

/// Identifier of a counting semaphore used for signal/wait edges
/// (condition-variable-like communication with semaphore semantics, so
/// signals are never lost and generated programs cannot deadlock on a
/// signal/wait ordering quirk).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SemId(pub u32);

impl SemId {
    /// Creates a semaphore id.
    pub fn new(index: u32) -> Self {
        SemId(index)
    }

    /// Returns the dense index of this semaphore id.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// Whether a memory access reads or writes (or atomically updates) memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A plain load.
    Read,
    /// A plain store.
    Write,
    /// An atomic read-modify-write (e.g. `fetch_add`, CAS). Counts as both a
    /// read and a write for coherence, and as a synchronizing access for
    /// happens-before purposes.
    AtomicRmw,
}

impl AccessKind {
    /// Returns `true` if the access observes memory (reads or RMWs).
    pub fn is_read(self) -> bool {
        matches!(self, AccessKind::Read | AccessKind::AtomicRmw)
    }

    /// Returns `true` if the access mutates memory (writes or RMWs).
    pub fn is_write(self) -> bool {
        matches!(self, AccessKind::Write | AccessKind::AtomicRmw)
    }

    /// Returns `true` for atomic (synchronizing) accesses.
    pub fn is_atomic(self) -> bool {
        matches!(self, AccessKind::AtomicRmw)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AccessKind::Read => "read",
            AccessKind::Write => "write",
            AccessKind::AtomicRmw => "atomic-rmw",
        };
        f.write_str(s)
    }
}

/// One operation performed by a simulated thread.
///
/// Programs are per-thread streams of `Op`s; the [`crate::Scheduler`]
/// interleaves them and enforces blocking semantics for the synchronization
/// variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Load from `addr`.
    Read {
        /// The address being read.
        addr: Addr,
    },
    /// Store to `addr`.
    Write {
        /// The address being written.
        addr: Addr,
    },
    /// Atomic read-modify-write on `addr`. Synchronizing: establishes
    /// happens-before edges through the address like a tiny lock.
    AtomicRmw {
        /// The address being atomically updated.
        addr: Addr,
    },
    /// Acquire `lock`, blocking while another thread holds it.
    Lock {
        /// The lock being acquired.
        lock: LockId,
    },
    /// Release `lock`.
    ///
    /// The scheduler reports an error if the releasing thread does not hold
    /// the lock.
    Unlock {
        /// The lock being released.
        lock: LockId,
    },
    /// Wait at `barrier` until `participants` threads (including this one)
    /// have arrived, then all proceed.
    Barrier {
        /// The barrier being waited on.
        barrier: BarrierId,
        /// Total number of threads that must arrive before any proceeds.
        participants: u32,
    },
    /// Make thread `child` runnable. Establishes a happens-before edge from
    /// the forking thread to the first operation of the child.
    Fork {
        /// The thread being started.
        child: ThreadId,
    },
    /// Block until thread `child` has executed all of its operations.
    /// Establishes a happens-before edge from the last operation of the
    /// child to the joining thread.
    Join {
        /// The thread being joined.
        child: ThreadId,
    },
    /// Increment semaphore `sem` (a "signal"/"post").
    Post {
        /// The semaphore being posted.
        sem: SemId,
    },
    /// Block until semaphore `sem` is positive, then decrement it.
    WaitSem {
        /// The semaphore being waited on.
        sem: SemId,
    },
    /// Pure computation costing `cycles` cycles; no memory traffic.
    Compute {
        /// Number of cycles the computation takes.
        cycles: u32,
    },
}

impl Op {
    /// If this op is a plain or atomic memory access, returns its address
    /// and kind.
    pub fn memory_access(&self) -> Option<(Addr, AccessKind)> {
        match *self {
            Op::Read { addr } => Some((addr, AccessKind::Read)),
            Op::Write { addr } => Some((addr, AccessKind::Write)),
            Op::AtomicRmw { addr } => Some((addr, AccessKind::AtomicRmw)),
            _ => None,
        }
    }

    /// Returns `true` for synchronization operations (everything that can
    /// establish a happens-before edge: locks, barriers, fork/join,
    /// semaphores, and atomic RMWs).
    pub fn is_sync(&self) -> bool {
        !matches!(
            self,
            Op::Read { .. } | Op::Write { .. } | Op::Compute { .. }
        )
    }

    /// Returns `true` for operations that may block the issuing thread.
    pub fn may_block(&self) -> bool {
        matches!(
            self,
            Op::Lock { .. } | Op::Barrier { .. } | Op::Join { .. } | Op::WaitSem { .. }
        )
    }

    /// A short lowercase name for the operation kind, used in stats keys.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Op::Read { .. } => "read",
            Op::Write { .. } => "write",
            Op::AtomicRmw { .. } => "atomic_rmw",
            Op::Lock { .. } => "lock",
            Op::Unlock { .. } => "unlock",
            Op::Barrier { .. } => "barrier",
            Op::Fork { .. } => "fork",
            Op::Join { .. } => "join",
            Op::Post { .. } => "post",
            Op::WaitSem { .. } => "wait_sem",
            Op::Compute { .. } => "compute",
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Op::Read { addr } => write!(f, "read {addr}"),
            Op::Write { addr } => write!(f, "write {addr}"),
            Op::AtomicRmw { addr } => write!(f, "rmw {addr}"),
            Op::Lock { lock } => write!(f, "lock {lock}"),
            Op::Unlock { lock } => write!(f, "unlock {lock}"),
            Op::Barrier {
                barrier,
                participants,
            } => {
                write!(f, "barrier {barrier} ({participants})")
            }
            Op::Fork { child } => write!(f, "fork {child}"),
            Op::Join { child } => write!(f, "join {child}"),
            Op::Post { sem } => write!(f, "post {sem}"),
            Op::WaitSem { sem } => write!(f, "wait {sem}"),
            Op::Compute { cycles } => write!(f, "compute {cycles}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_id_basics() {
        assert_eq!(ThreadId::MAIN, ThreadId::new(0));
        assert_eq!(ThreadId::new(7).index(), 7);
        assert_eq!(ThreadId::from(3), ThreadId(3));
        assert_eq!(format!("{}", ThreadId(2)), "T2");
    }

    #[test]
    fn addr_line_math() {
        assert_eq!(Addr(0).line(64), 0);
        assert_eq!(Addr(63).line(64), 0);
        assert_eq!(Addr(64).line(64), 1);
        assert_eq!(Addr(130).align_down(64), Addr(128));
        assert_eq!(Addr(100).offset(28), Addr(128));
        assert_eq!(format!("{}", Addr(0xff)), "0xff");
    }

    #[test]
    fn access_kind_predicates() {
        assert!(AccessKind::Read.is_read());
        assert!(!AccessKind::Read.is_write());
        assert!(AccessKind::Write.is_write());
        assert!(!AccessKind::Write.is_read());
        assert!(AccessKind::AtomicRmw.is_read());
        assert!(AccessKind::AtomicRmw.is_write());
        assert!(AccessKind::AtomicRmw.is_atomic());
        assert!(!AccessKind::Write.is_atomic());
    }

    #[test]
    fn op_memory_access_extraction() {
        assert_eq!(
            Op::Read { addr: Addr(8) }.memory_access(),
            Some((Addr(8), AccessKind::Read))
        );
        assert_eq!(
            Op::Write { addr: Addr(8) }.memory_access(),
            Some((Addr(8), AccessKind::Write))
        );
        assert_eq!(
            Op::AtomicRmw { addr: Addr(8) }.memory_access(),
            Some((Addr(8), AccessKind::AtomicRmw))
        );
        assert_eq!(Op::Lock { lock: LockId(0) }.memory_access(), None);
        assert_eq!(Op::Compute { cycles: 5 }.memory_access(), None);
    }

    #[test]
    fn op_sync_classification() {
        assert!(!Op::Read { addr: Addr(0) }.is_sync());
        assert!(!Op::Write { addr: Addr(0) }.is_sync());
        assert!(!Op::Compute { cycles: 1 }.is_sync());
        assert!(Op::AtomicRmw { addr: Addr(0) }.is_sync());
        assert!(Op::Lock { lock: LockId(0) }.is_sync());
        assert!(Op::Unlock { lock: LockId(0) }.is_sync());
        assert!(Op::Barrier {
            barrier: BarrierId(0),
            participants: 2
        }
        .is_sync());
        assert!(Op::Fork { child: ThreadId(1) }.is_sync());
        assert!(Op::Join { child: ThreadId(1) }.is_sync());
        assert!(Op::Post { sem: SemId(0) }.is_sync());
        assert!(Op::WaitSem { sem: SemId(0) }.is_sync());
    }

    #[test]
    fn op_blocking_classification() {
        assert!(Op::Lock { lock: LockId(0) }.may_block());
        assert!(Op::Barrier {
            barrier: BarrierId(0),
            participants: 2
        }
        .may_block());
        assert!(Op::Join { child: ThreadId(1) }.may_block());
        assert!(Op::WaitSem { sem: SemId(0) }.may_block());
        assert!(!Op::Unlock { lock: LockId(0) }.may_block());
        assert!(!Op::Post { sem: SemId(0) }.may_block());
        assert!(!Op::Fork { child: ThreadId(1) }.may_block());
        assert!(!Op::Read { addr: Addr(0) }.may_block());
    }

    #[test]
    fn op_display_is_nonempty() {
        let ops = [
            Op::Read { addr: Addr(1) },
            Op::Write { addr: Addr(1) },
            Op::AtomicRmw { addr: Addr(1) },
            Op::Lock { lock: LockId(1) },
            Op::Unlock { lock: LockId(1) },
            Op::Barrier {
                barrier: BarrierId(1),
                participants: 4,
            },
            Op::Fork { child: ThreadId(1) },
            Op::Join { child: ThreadId(1) },
            Op::Post { sem: SemId(1) },
            Op::WaitSem { sem: SemId(1) },
            Op::Compute { cycles: 10 },
        ];
        for op in ops {
            assert!(!format!("{op}").is_empty());
            assert!(!op.kind_name().is_empty());
        }
    }
}

ddrace_json::json_newtype!(ThreadId, Addr, LockId, BarrierId, SemId);
ddrace_json::json_unit_enum!(AccessKind {
    Read,
    Write,
    AtomicRmw
});
ddrace_json::json_enum!(Op {
    Read { addr },
    Write { addr },
    AtomicRmw { addr },
    Lock { lock },
    Unlock { lock },
    Barrier { barrier, participants },
    Fork { child },
    Join { child },
    Post { sem },
    WaitSem { sem },
    Compute { cycles },
});
