//! The scheduler's runnable set: a two-level bitmap run-queue.
//!
//! [`RunQueue`] tracks which thread indices are runnable and answers the
//! one query the round-robin scheduler asks every turn: *the first
//! runnable index at or cyclically after the cursor*. The old picker
//! answered it by scanning every thread (`O(threads)` per step, the
//! bottleneck the ROADMAP called out for the 64-core SMT sweeps); the
//! bitmap answers it with a handful of word operations — effectively
//! `O(1)` for any realistic thread count — while insert and remove are
//! single bit flips.
//!
//! Layout: bit `i` of `words[i / 64]` is set iff index `i` is queued, and
//! bit `w` of `summary[w / 64]` is set iff `words[w] != 0`. A cyclic
//! search masks off the bits below the cursor in its starting word, then
//! walks the summary to jump directly to the next non-empty word. Because
//! the search order is index order relative to the cursor — exactly the
//! order the legacy scan probed statuses in — the queue-based picker
//! reproduces the legacy schedule bit for bit (pinned by the
//! digest-equivalence suite in `ddrace-bench`).

/// A fixed-capacity set of `usize` indices supporting O(1) insert/remove
/// and cyclic first-set queries. See the module docs for the layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunQueue {
    /// Bit `i % 64` of `words[i / 64]` ⇔ index `i` is queued.
    words: Vec<u64>,
    /// Bit `w % 64` of `summary[w / 64]` ⇔ `words[w] != 0`.
    summary: Vec<u64>,
    /// Number of queued indices.
    len: usize,
    /// Exclusive upper bound on queueable indices.
    capacity: usize,
}

impl RunQueue {
    /// An empty queue accepting indices in `0..capacity`.
    pub fn new(capacity: usize) -> RunQueue {
        let words = capacity.div_ceil(64).max(1);
        RunQueue {
            words: vec![0; words],
            summary: vec![0; words.div_ceil(64)],
            len: 0,
            capacity,
        }
    }

    /// Number of queued indices.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True when `index` is queued.
    pub fn contains(&self, index: usize) -> bool {
        debug_assert!(index < self.capacity, "index {index} out of range");
        self.words[index / 64] & (1u64 << (index % 64)) != 0
    }

    /// Queues `index`. Returns `true` if it was newly inserted.
    pub fn insert(&mut self, index: usize) -> bool {
        debug_assert!(index < self.capacity, "index {index} out of range");
        let (w, bit) = (index / 64, 1u64 << (index % 64));
        if self.words[w] & bit != 0 {
            return false;
        }
        self.words[w] |= bit;
        self.summary[w / 64] |= 1u64 << (w % 64);
        self.len += 1;
        true
    }

    /// Removes `index`. Returns `true` if it was present.
    pub fn remove(&mut self, index: usize) -> bool {
        debug_assert!(index < self.capacity, "index {index} out of range");
        let (w, bit) = (index / 64, 1u64 << (index % 64));
        if self.words[w] & bit == 0 {
            return false;
        }
        self.words[w] &= !bit;
        if self.words[w] == 0 {
            self.summary[w / 64] &= !(1u64 << (w % 64));
        }
        self.len -= 1;
        true
    }

    /// The first queued index at or after `start`, wrapping to the lowest
    /// queued index when nothing at or above `start` is queued — i.e. the
    /// queued index minimizing `(i - start) mod capacity`.
    pub fn next_cyclic(&self, start: usize) -> Option<usize> {
        if self.len == 0 {
            return None;
        }
        debug_assert!(start < self.capacity.max(1), "start {start} out of range");
        // If nothing is queued at or above `start`, the minimizer is the
        // lowest queued index (nonempty, so the wrap always finds one).
        self.next_at_or_after(start)
            .or_else(|| self.next_at_or_after(0))
    }

    /// The first queued index at or after `start` (no wrap-around).
    fn next_at_or_after(&self, start: usize) -> Option<usize> {
        let w0 = start / 64;
        if w0 >= self.words.len() {
            return None;
        }
        // Within the starting word: mask off bits below `start`. The shift
        // amount is `start % 64`, so it never reaches the UB-prone 64.
        let masked = self.words[w0] & (!0u64 << (start % 64));
        if masked != 0 {
            return Some(w0 * 64 + masked.trailing_zeros() as usize);
        }
        // Jump via the summary to the next non-empty word strictly after
        // w0. `(!0 << b) << 1` keeps bits strictly above `b` and is zero
        // (not UB) when b == 63.
        let s0 = w0 / 64;
        let mut s = s0;
        let mut mask = self.summary[s0] & ((!0u64 << (w0 % 64)) << 1);
        loop {
            if mask != 0 {
                let w = s * 64 + mask.trailing_zeros() as usize;
                let word = self.words[w];
                debug_assert!(word != 0, "summary bit set for empty word {w}");
                return Some(w * 64 + word.trailing_zeros() as usize);
            }
            s += 1;
            if s >= self.summary.len() {
                return None;
            }
            mask = self.summary[s];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Prng;

    /// The specification next_cyclic is held to: a plain modular scan.
    fn naive_next(set: &[bool], start: usize) -> Option<usize> {
        let n = set.len();
        (0..n).map(|off| (start + off) % n).find(|&i| set[i])
    }

    #[test]
    fn empty_queue_has_no_next() {
        let q = RunQueue::new(10);
        assert!(q.is_empty());
        assert_eq!(q.next_cyclic(0), None);
        assert_eq!(q.next_cyclic(9), None);
    }

    #[test]
    fn insert_remove_track_membership() {
        let mut q = RunQueue::new(130);
        assert!(q.insert(0));
        assert!(q.insert(129));
        assert!(!q.insert(129), "double insert reports not-new");
        assert_eq!(q.len(), 2);
        assert!(q.contains(0) && q.contains(129) && !q.contains(64));
        assert!(q.remove(0));
        assert!(!q.remove(0), "double remove reports absent");
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn next_cyclic_wraps_like_the_scan() {
        let mut q = RunQueue::new(8);
        q.insert(2);
        q.insert(5);
        assert_eq!(q.next_cyclic(0), Some(2));
        assert_eq!(q.next_cyclic(2), Some(2));
        assert_eq!(q.next_cyclic(3), Some(5));
        assert_eq!(q.next_cyclic(6), Some(2), "wraps past the end");
    }

    #[test]
    fn word_boundaries_are_exact() {
        // Indices straddling the 64-bit word and 4096-bit summary-word
        // boundaries, where shift bugs would live.
        let mut q = RunQueue::new(4200);
        for i in [0usize, 63, 64, 127, 128, 4095, 4096, 4199] {
            q.insert(i);
        }
        assert_eq!(q.next_cyclic(1), Some(63));
        assert_eq!(q.next_cyclic(64), Some(64));
        assert_eq!(q.next_cyclic(65), Some(127));
        assert_eq!(q.next_cyclic(129), Some(4095));
        assert_eq!(q.next_cyclic(4097), Some(4199));
        assert_eq!(q.next_cyclic(4199), Some(4199));
        q.remove(4199);
        assert_eq!(q.next_cyclic(4097), Some(0), "wraps to lowest");
    }

    #[test]
    fn agrees_with_naive_scan_under_churn() {
        for (capacity, seed) in [(1usize, 1u64), (7, 2), (64, 3), (65, 4), (200, 5), (513, 6)] {
            let mut rng = Prng::seed_from_u64(seed);
            let mut q = RunQueue::new(capacity);
            let mut set = vec![false; capacity];
            for _ in 0..4000 {
                let i = rng.below(capacity as u64) as usize;
                match rng.below(3) {
                    0 => {
                        assert_eq!(q.insert(i), !set[i]);
                        set[i] = true;
                    }
                    1 => {
                        assert_eq!(q.remove(i), set[i]);
                        set[i] = false;
                    }
                    _ => {
                        let start = rng.below(capacity as u64) as usize;
                        assert_eq!(
                            q.next_cyclic(start),
                            naive_next(&set, start),
                            "capacity {capacity} start {start}"
                        );
                    }
                }
                assert_eq!(q.len(), set.iter().filter(|&&b| b).count());
            }
        }
    }
}
