//! Program representation: a set of per-thread operation streams.
//!
//! Threads are *lazy*: each is an [`OpStream`] that produces its next
//! operation on demand, so billion-operation workloads stream in O(1)
//! memory. A [`Program`] bundles the streams with start-up metadata.

use crate::op::{Op, ThreadId};

/// A lazy, single-pass source of operations for one simulated thread.
///
/// Implementations must be deterministic: two streams constructed the same
/// way must yield the same sequence (workload generators take explicit RNG
/// seeds). The scheduler buffers at most one pending operation per thread,
/// so implementations never need to support look-ahead.
///
/// Any `Iterator<Item = Op> + Send` automatically implements `OpStream`.
///
/// # Examples
///
/// ```
/// use ddrace_program::{Op, Addr, OpStream};
/// let mut s = vec![Op::Read { addr: Addr(8) }].into_iter();
/// assert_eq!(OpStream::next_op(&mut s), Some(Op::Read { addr: Addr(8) }));
/// assert_eq!(OpStream::next_op(&mut s), None);
/// ```
pub trait OpStream: Send {
    /// Produces the next operation, or `None` when the thread has finished.
    fn next_op(&mut self) -> Option<Op>;
}

impl<I> OpStream for I
where
    I: Iterator<Item = Op> + Send,
{
    fn next_op(&mut self) -> Option<Op> {
        self.next()
    }
}

/// How a program's non-main threads become runnable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum StartMode {
    /// Only thread 0 starts; other threads wait for an explicit
    /// [`Op::Fork`] naming them. This is how real programs behave and is
    /// what workload generators emit.
    #[default]
    ForkExplicit,
    /// All threads start immediately. The scheduler synthesizes a fork
    /// event from thread 0 to every other thread before execution begins,
    /// so happens-before analysis still sees correct creation edges.
    /// Convenient for hand-built test programs.
    AllStart,
}

/// A complete simulated program: one [`OpStream`] per thread plus start-up
/// metadata.
///
/// Thread ids are positional: the stream at index `i` runs as
/// `ThreadId(i)`. Thread 0 is the main thread.
///
/// # Examples
///
/// ```
/// use ddrace_program::{Program, Op, Addr, StartMode};
/// let t0 = vec![Op::Write { addr: Addr(64) }];
/// let t1 = vec![Op::Read { addr: Addr(64) }];
/// let program = Program::from_thread_vecs(vec![t0, t1], StartMode::AllStart);
/// assert_eq!(program.thread_count(), 2);
/// ```
pub struct Program {
    threads: Vec<Box<dyn OpStream>>,
    start_mode: StartMode,
}

impl Program {
    /// Creates a program from boxed per-thread streams.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is empty (every program needs a main thread).
    pub fn new(threads: Vec<Box<dyn OpStream>>, start_mode: StartMode) -> Self {
        assert!(
            !threads.is_empty(),
            "a program needs at least a main thread"
        );
        Program {
            threads,
            start_mode,
        }
    }

    /// Convenience constructor from concrete `Vec<Op>` bodies.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is empty.
    pub fn from_thread_vecs(threads: Vec<Vec<Op>>, start_mode: StartMode) -> Self {
        let streams = threads
            .into_iter()
            .map(|ops| Box::new(ops.into_iter()) as Box<dyn OpStream>)
            .collect();
        Program::new(streams, start_mode)
    }

    /// Number of threads (including main).
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// The program's start mode.
    pub fn start_mode(&self) -> StartMode {
        self.start_mode
    }

    /// Returns `true` if `tid` names a thread of this program.
    pub fn contains_thread(&self, tid: ThreadId) -> bool {
        tid.index() < self.threads.len()
    }

    /// Deconstructs the program into its streams and start mode. Used by
    /// the scheduler.
    pub fn into_parts(self) -> (Vec<Box<dyn OpStream>>, StartMode) {
        (self.threads, self.start_mode)
    }
}

impl std::fmt::Debug for Program {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Program")
            .field("threads", &self.threads.len())
            .field("start_mode", &self.start_mode)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Addr;

    #[test]
    fn iterator_is_op_stream() {
        let mut s = (0..3).map(|i| Op::Compute { cycles: i });
        assert_eq!(OpStream::next_op(&mut s), Some(Op::Compute { cycles: 0 }));
        assert_eq!(OpStream::next_op(&mut s), Some(Op::Compute { cycles: 1 }));
        assert_eq!(OpStream::next_op(&mut s), Some(Op::Compute { cycles: 2 }));
        assert_eq!(OpStream::next_op(&mut s), None);
    }

    #[test]
    fn program_metadata() {
        let p = Program::from_thread_vecs(
            vec![vec![Op::Read { addr: Addr(8) }], vec![], vec![]],
            StartMode::AllStart,
        );
        assert_eq!(p.thread_count(), 3);
        assert_eq!(p.start_mode(), StartMode::AllStart);
        assert!(p.contains_thread(ThreadId(2)));
        assert!(!p.contains_thread(ThreadId(3)));
        assert!(format!("{p:?}").contains("threads"));
    }

    #[test]
    #[should_panic(expected = "at least a main thread")]
    fn empty_program_panics() {
        let _ = Program::from_thread_vecs(vec![], StartMode::AllStart);
    }

    #[test]
    fn into_parts_roundtrip() {
        let p = Program::from_thread_vecs(
            vec![vec![Op::Compute { cycles: 1 }]],
            StartMode::ForkExplicit,
        );
        let (mut streams, mode) = p.into_parts();
        assert_eq!(mode, StartMode::ForkExplicit);
        assert_eq!(streams.len(), 1);
        assert_eq!(streams[0].next_op(), Some(Op::Compute { cycles: 1 }));
        assert_eq!(streams[0].next_op(), None);
    }
}
