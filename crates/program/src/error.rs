//! Error types for program construction and scheduling.

use crate::op::{BarrierId, LockId, Op, ThreadId};
use std::error::Error;
use std::fmt;

/// Why a thread is blocked, as reported in deadlock diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockReason {
    /// Waiting to acquire a lock held by another thread.
    Lock(LockId),
    /// Waiting at a barrier for the remaining participants.
    Barrier(BarrierId),
    /// Waiting for a thread to finish.
    Join(ThreadId),
    /// Waiting for a semaphore to become positive.
    Semaphore(crate::op::SemId),
}

impl fmt::Display for BlockReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockReason::Lock(l) => write!(f, "acquiring {l}"),
            BlockReason::Barrier(b) => write!(f, "waiting at {b}"),
            BlockReason::Join(t) => write!(f, "joining {t}"),
            BlockReason::Semaphore(s) => write!(f, "waiting on {s}"),
        }
    }
}

/// An error detected while executing a simulated program.
///
/// These indicate structurally ill-formed programs (the simulated analogue
/// of undefined behaviour or a hang), not data races — races are the
/// detector's business and are never scheduler errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// All unfinished threads are blocked; nothing can make progress.
    Deadlock {
        /// The blocked threads and what each is waiting for.
        blocked: Vec<(ThreadId, BlockReason)>,
    },
    /// A thread released a lock it does not hold.
    UnlockNotHeld {
        /// The offending thread.
        tid: ThreadId,
        /// The lock it tried to release.
        lock: LockId,
    },
    /// A thread tried to re-acquire a (non-reentrant) lock it already holds.
    RelockHeld {
        /// The offending thread.
        tid: ThreadId,
        /// The lock it already holds.
        lock: LockId,
    },
    /// A thread finished while still holding locks.
    FinishedHoldingLocks {
        /// The offending thread.
        tid: ThreadId,
        /// The locks still held.
        locks: Vec<LockId>,
    },
    /// A fork named a thread that does not exist.
    ForkUnknownThread {
        /// The forking thread.
        tid: ThreadId,
        /// The nonexistent target.
        child: ThreadId,
    },
    /// A fork named a thread that has already been started.
    ForkAlreadyStarted {
        /// The forking thread.
        tid: ThreadId,
        /// The already-started target.
        child: ThreadId,
    },
    /// A join named a thread that does not exist, or the thread joined
    /// itself.
    JoinInvalid {
        /// The joining thread.
        tid: ThreadId,
        /// The invalid target.
        child: ThreadId,
    },
    /// Two arrivals at the same barrier declared different participant
    /// counts.
    BarrierMismatch {
        /// The barrier in question.
        barrier: BarrierId,
        /// The participant count from the first arrival.
        expected: u32,
        /// The conflicting count.
        found: u32,
    },
    /// More threads arrived at a barrier than it declared participants.
    BarrierOverflow {
        /// The barrier in question.
        barrier: BarrierId,
        /// Declared participant count.
        participants: u32,
    },
    /// An op was produced by a thread that was never started — a bug in an
    /// [`crate::OpStream`] implementation rather than in the program.
    InternalInvariant {
        /// Human-readable description of the broken invariant.
        what: &'static str,
        /// The operation being processed, if any.
        op: Option<Op>,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::Deadlock { blocked } => {
                write!(f, "deadlock: {} thread(s) blocked (", blocked.len())?;
                for (i, (tid, why)) in blocked.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{tid} {why}")?;
                }
                f.write_str(")")
            }
            ScheduleError::UnlockNotHeld { tid, lock } => {
                write!(f, "{tid} released {lock} which it does not hold")
            }
            ScheduleError::RelockHeld { tid, lock } => {
                write!(f, "{tid} re-acquired non-reentrant {lock} it already holds")
            }
            ScheduleError::FinishedHoldingLocks { tid, locks } => {
                write!(f, "{tid} finished while holding {} lock(s)", locks.len())
            }
            ScheduleError::ForkUnknownThread { tid, child } => {
                write!(f, "{tid} forked unknown thread {child}")
            }
            ScheduleError::ForkAlreadyStarted { tid, child } => {
                write!(f, "{tid} forked already-started thread {child}")
            }
            ScheduleError::JoinInvalid { tid, child } => {
                write!(f, "{tid} joined invalid thread {child}")
            }
            ScheduleError::BarrierMismatch {
                barrier,
                expected,
                found,
            } => {
                write!(
                    f,
                    "{barrier} arrival declared {found} participants, expected {expected}"
                )
            }
            ScheduleError::BarrierOverflow {
                barrier,
                participants,
            } => {
                write!(f, "more than {participants} thread(s) arrived at {barrier}")
            }
            ScheduleError::InternalInvariant { what, .. } => {
                write!(f, "internal scheduler invariant violated: {what}")
            }
        }
    }
}

impl Error for ScheduleError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::SemId;

    #[test]
    fn display_formats_are_informative() {
        let errors: Vec<ScheduleError> = vec![
            ScheduleError::Deadlock {
                blocked: vec![
                    (ThreadId(1), BlockReason::Lock(LockId(0))),
                    (ThreadId(2), BlockReason::Join(ThreadId(1))),
                ],
            },
            ScheduleError::UnlockNotHeld {
                tid: ThreadId(0),
                lock: LockId(3),
            },
            ScheduleError::RelockHeld {
                tid: ThreadId(0),
                lock: LockId(3),
            },
            ScheduleError::FinishedHoldingLocks {
                tid: ThreadId(1),
                locks: vec![LockId(0)],
            },
            ScheduleError::ForkUnknownThread {
                tid: ThreadId(0),
                child: ThreadId(9),
            },
            ScheduleError::ForkAlreadyStarted {
                tid: ThreadId(0),
                child: ThreadId(1),
            },
            ScheduleError::JoinInvalid {
                tid: ThreadId(0),
                child: ThreadId(0),
            },
            ScheduleError::BarrierMismatch {
                barrier: BarrierId(0),
                expected: 4,
                found: 2,
            },
            ScheduleError::BarrierOverflow {
                barrier: BarrierId(0),
                participants: 2,
            },
            ScheduleError::InternalInvariant {
                what: "x",
                op: None,
            },
        ];
        for e in errors {
            let text = format!("{e}");
            assert!(!text.is_empty());
            // Ensure the error is usable as a boxed std error.
            let boxed: Box<dyn Error> = Box::new(e);
            assert!(!boxed.to_string().is_empty());
        }
    }

    #[test]
    fn block_reason_display() {
        assert_eq!(format!("{}", BlockReason::Lock(LockId(1))), "acquiring L1");
        assert_eq!(
            format!("{}", BlockReason::Barrier(BarrierId(2))),
            "waiting at B2"
        );
        assert_eq!(format!("{}", BlockReason::Join(ThreadId(3))), "joining T3");
        assert_eq!(
            format!("{}", BlockReason::Semaphore(SemId(4))),
            "waiting on S4"
        );
    }
}
