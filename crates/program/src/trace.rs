//! Execution-trace capture and replay.
//!
//! A [`Trace`] is the schedule-resolved event stream of one execution:
//! what the scheduler emitted, in order, with every blocking decision
//! already made. Traces enable the record-once / analyze-many workflow
//! real dynamic-analysis tools use — capture a (cheap) run, then replay
//! it through as many detector configurations as you like with the exact
//! same interleaving.
//!
//! [`TraceRecorder`] is an [`ExecutionListener`] that captures while
//! optionally forwarding to an inner listener; [`Trace::replay`] feeds
//! any listener the recorded stream.

use crate::op::{BarrierId, Op, ThreadId};
use crate::schedule::{Event, ExecutionListener};

/// One recorded event (the owned analogue of [`Event`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A thread became runnable.
    ThreadStarted {
        /// The thread that started.
        tid: ThreadId,
        /// Its creator, if any.
        parent: Option<ThreadId>,
    },
    /// A thread executed an operation.
    Op {
        /// The executing thread.
        tid: ThreadId,
        /// The operation.
        op: Op,
    },
    /// A barrier released its participants.
    BarrierReleased {
        /// The barrier.
        barrier: BarrierId,
        /// Participants, in arrival order.
        participants: Vec<ThreadId>,
    },
    /// A thread finished.
    ThreadFinished {
        /// The finished thread.
        tid: ThreadId,
    },
}

impl<'a> From<&Event<'a>> for TraceEvent {
    /// Owned capture of a borrowed scheduler event — what external
    /// recorders (the simulator's trace capture, binary trace writers)
    /// use to persist the stream.
    fn from(event: &Event<'a>) -> Self {
        TraceEvent::from_event(event)
    }
}

impl TraceEvent {
    fn from_event(event: &Event<'_>) -> Self {
        match *event {
            Event::ThreadStarted { tid, parent } => TraceEvent::ThreadStarted { tid, parent },
            Event::Op { tid, op } => TraceEvent::Op { tid, op },
            Event::BarrierReleased {
                barrier,
                participants,
            } => TraceEvent::BarrierReleased {
                barrier,
                participants: participants.to_vec(),
            },
            Event::ThreadFinished { tid } => TraceEvent::ThreadFinished { tid },
        }
    }
}

/// A complete recorded execution.
///
/// # Examples
///
/// ```
/// use ddrace_program::{ProgramBuilder, SchedulerConfig, ThreadId, Trace, run_program};
///
/// let mut b = ProgramBuilder::new();
/// let x = b.alloc_shared(8).base();
/// b.on(ThreadId::MAIN).write(x).read(x);
///
/// let trace = Trace::record(b.build(), SchedulerConfig::default())?;
/// assert_eq!(trace.op_count(), 2);
///
/// // Replay into any listener: same events, same order.
/// let mut n = 0;
/// trace.replay(&mut |e: ddrace_program::Event<'_>| {
///     if matches!(e, ddrace_program::Event::Op { .. }) { n += 1; }
/// });
/// assert_eq!(n, 2);
/// # Ok::<(), ddrace_program::ScheduleError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Runs `program` under `config` and records the whole event stream.
    ///
    /// # Errors
    ///
    /// Propagates scheduler errors from the run.
    pub fn record(
        program: crate::program::Program,
        config: crate::schedule::SchedulerConfig,
    ) -> Result<Trace, crate::error::ScheduleError> {
        Trace::record_with(program, config, crate::schedule::PickStrategy::default())
    }

    /// [`Trace::record`] with an explicit runnable-thread picker — the
    /// hook differential testing needs to check that both pickers
    /// resolve a program to the same event stream.
    ///
    /// # Errors
    ///
    /// Propagates scheduler errors from the run.
    pub fn record_with(
        program: crate::program::Program,
        config: crate::schedule::SchedulerConfig,
        strategy: crate::schedule::PickStrategy,
    ) -> Result<Trace, crate::error::ScheduleError> {
        let mut recorder = TraceRecorder::new(crate::schedule::NullListener);
        crate::schedule::Scheduler::new(program, config)
            .with_pick_strategy(strategy)
            .run(&mut recorder)?;
        Ok(recorder.into_trace().0)
    }

    /// The recorded events.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of executed operations in the trace.
    pub fn op_count(&self) -> u64 {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Op { .. }))
            .count() as u64
    }

    /// Number of distinct threads that started.
    pub fn thread_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::ThreadStarted { .. }))
            .count()
    }

    /// Feeds the recorded stream to `listener`, exactly as the original
    /// scheduler did.
    pub fn replay<L: ExecutionListener + ?Sized>(&self, listener: &mut L) {
        for event in &self.events {
            match event {
                TraceEvent::ThreadStarted { tid, parent } => {
                    listener.on_event(Event::ThreadStarted {
                        tid: *tid,
                        parent: *parent,
                    });
                }
                TraceEvent::Op { tid, op } => {
                    listener.on_event(Event::Op { tid: *tid, op: *op });
                }
                TraceEvent::BarrierReleased {
                    barrier,
                    participants,
                } => {
                    listener.on_event(Event::BarrierReleased {
                        barrier: *barrier,
                        participants,
                    });
                }
                TraceEvent::ThreadFinished { tid } => {
                    listener.on_event(Event::ThreadFinished { tid: *tid });
                }
            }
        }
    }
}

impl FromIterator<TraceEvent> for Trace {
    fn from_iter<I: IntoIterator<Item = TraceEvent>>(iter: I) -> Self {
        Trace {
            events: iter.into_iter().collect(),
        }
    }
}

/// Listener adapter that records every event while forwarding to an inner
/// listener.
#[derive(Debug, Clone, Default)]
pub struct TraceRecorder<L> {
    inner: L,
    trace: Trace,
}

impl<L: ExecutionListener> TraceRecorder<L> {
    /// Wraps `inner`.
    pub fn new(inner: L) -> Self {
        TraceRecorder {
            inner,
            trace: Trace::default(),
        }
    }

    /// The trace recorded so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Consumes the recorder, returning the trace and the inner listener.
    pub fn into_trace(self) -> (Trace, L) {
        (self.trace, self.inner)
    }
}

impl<L: ExecutionListener> ExecutionListener for TraceRecorder<L> {
    fn on_event(&mut self, event: Event<'_>) {
        self.trace.events.push(TraceEvent::from_event(&event));
        self.inner.on_event(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::schedule::{run_program, NullListener, SchedulerConfig};

    fn sample_trace(seed: u64) -> Trace {
        let mut b = ProgramBuilder::new();
        b.all_start();
        let x = b.alloc_shared(64);
        let l = b.new_lock();
        let bar = b.new_barrier();
        let t1 = b.add_thread();
        b.on(ThreadId::MAIN)
            .write(x.index(0))
            .lock(l)
            .write(x.index(8))
            .unlock(l)
            .barrier(bar, 2)
            .read(x.index(0));
        b.on(t1).lock(l).read(x.index(8)).unlock(l).barrier(bar, 2);
        Trace::record(b.build(), SchedulerConfig::jittered(seed)).unwrap()
    }

    #[test]
    fn record_captures_everything() {
        let trace = sample_trace(3);
        assert_eq!(trace.thread_count(), 2);
        assert_eq!(trace.op_count(), 10);
        assert!(trace
            .events()
            .iter()
            .any(|e| matches!(e, TraceEvent::BarrierReleased { .. })));
        assert_eq!(
            trace
                .events()
                .iter()
                .filter(|e| matches!(e, TraceEvent::ThreadFinished { .. }))
                .count(),
            2
        );
    }

    #[test]
    fn replay_reproduces_the_stream() {
        let trace = sample_trace(7);
        let mut replayed = Vec::new();
        trace.replay(&mut |e: Event<'_>| {
            replayed.push(TraceEvent::from_event(&e));
        });
        assert_eq!(replayed, trace.events());
    }

    #[test]
    fn recorder_forwards_to_inner() {
        let mut b = ProgramBuilder::new();
        b.on(ThreadId::MAIN).compute(1).compute(2);
        let mut seen = 0;
        let mut recorder = TraceRecorder::new(|e: Event<'_>| {
            if matches!(e, Event::Op { .. }) {
                seen += 1;
            }
        });
        run_program(b.build(), SchedulerConfig::default(), &mut recorder).unwrap();
        let (trace, _) = recorder.into_trace();
        assert_eq!(trace.op_count(), 2);
        drop(trace);
        assert_eq!(seen, 2);
    }

    #[test]
    fn trace_serializes() {
        let trace = sample_trace(1);
        let json = ddrace_json::to_string(&trace).unwrap();
        let back: Trace = ddrace_json::from_str(&json).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn record_surfaces_schedule_errors() {
        let mut b = ProgramBuilder::new();
        let l = b.new_lock();
        b.on(ThreadId::MAIN).unlock(l);
        assert!(Trace::record(b.build(), SchedulerConfig::default()).is_err());
    }

    #[test]
    fn different_seeds_record_different_traces() {
        // With jitter, interleavings differ; the recorded traces reflect
        // that while each remains individually deterministic.
        let a = sample_trace(100);
        let b = sample_trace(200);
        let a2 = sample_trace(100);
        assert_eq!(a, a2);
        // (a and b may coincide for tiny programs; only assert determinism.)
        let _ = b;
    }

    #[test]
    fn null_recorder_path() {
        let mut recorder = TraceRecorder::new(NullListener);
        recorder.on_event(Event::ThreadStarted {
            tid: ThreadId(0),
            parent: None,
        });
        assert_eq!(recorder.trace().thread_count(), 1);
    }
}

ddrace_json::json_enum!(TraceEvent {
    ThreadStarted { tid, parent },
    Op { tid, op },
    BarrierReleased { barrier, participants },
    ThreadFinished { tid },
});
ddrace_json::json_struct!(Trace { events });
