//! Carving of the simulated flat address space into non-overlapping regions.
//!
//! Workload generators need three kinds of memory:
//!
//! * **private** per-thread regions (stack/heap data only one thread touches),
//! * **shared** regions (data structures several threads touch),
//! * a **sync** region holding the memory words behind locks, barriers and
//!   semaphores — real synchronization objects live in memory and their
//!   cache lines ping-pong between cores, which is visible to the coherence
//!   simulator exactly like data sharing.
//!
//! [`AddressSpace`] hands out aligned, non-overlapping regions for each.

use crate::op::{Addr, BarrierId, LockId, SemId, ThreadId};

/// Default cache line size used to pad sync objects apart.
pub const DEFAULT_LINE_SIZE: u64 = 64;

/// A contiguous, half-open region `[base, base + len)` of simulated memory.
///
/// # Examples
///
/// ```
/// use ddrace_program::{AddressSpace, Region};
/// let mut space = AddressSpace::new();
/// let r: Region = space.alloc_region(4096);
/// assert_eq!(r.len(), 4096);
/// assert!(r.contains(r.index(0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Region {
    base: u64,
    len: u64,
}

impl Region {
    /// Creates a region from a base address and a byte length.
    pub fn new(base: Addr, len: u64) -> Self {
        Region { base: base.0, len }
    }

    /// Returns the first address of the region.
    pub fn base(&self) -> Addr {
        Addr(self.base)
    }

    /// Returns the length of the region in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Returns `true` if the region is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns the address at byte offset `off` within the region, wrapping
    /// modulo the region length so any `u64` is a valid index. Wrapping makes
    /// the region convenient as a working set for generated access streams.
    pub fn index(&self, off: u64) -> Addr {
        debug_assert!(self.len > 0, "cannot index an empty region");
        Addr(self.base + (off % self.len))
    }

    /// Returns the `i`-th 8-byte word of the region, wrapping modulo the
    /// number of words.
    pub fn word(&self, i: u64) -> Addr {
        debug_assert!(self.len >= 8, "region too small for word indexing");
        let words = self.len / 8;
        Addr(self.base + (i % words) * 8)
    }

    /// Returns `true` if `addr` lies inside the region.
    pub fn contains(&self, addr: Addr) -> bool {
        addr.0 >= self.base && addr.0 < self.base + self.len
    }

    /// Number of distinct cache lines the region spans for `line_size`.
    pub fn line_count(&self, line_size: u64) -> u64 {
        if self.len == 0 {
            return 0;
        }
        let first = self.base / line_size;
        let last = (self.base + self.len - 1) / line_size;
        last - first + 1
    }
}

/// Allocator for non-overlapping regions of the simulated address space.
///
/// Also provides the canonical mapping of synchronization objects to the
/// memory addresses that back them (one cache line each, so false sharing
/// between sync objects does not muddy experiments unless asked for).
///
/// # Examples
///
/// ```
/// use ddrace_program::{AddressSpace, ThreadId, LockId};
/// let mut space = AddressSpace::new();
/// let private = space.alloc_private(ThreadId::new(1), 1024);
/// let shared = space.alloc_region(1 << 20);
/// assert!(!shared.contains(private.base()));
/// let lock_word = AddressSpace::lock_addr(LockId::new(3));
/// assert!(AddressSpace::is_sync_addr(lock_word));
/// ```
#[derive(Debug, Clone)]
pub struct AddressSpace {
    next: u64,
}

impl AddressSpace {
    /// Base of the region reserved for synchronization-object words.
    /// Ordinary allocations never reach this (it is at the top of the
    /// address space).
    pub const SYNC_BASE: u64 = 0xFFFF_0000_0000_0000;

    /// Creates an empty address space. Allocation starts at a small non-zero
    /// base so address 0 is never valid data (it is useful as a sentinel).
    pub fn new() -> Self {
        AddressSpace { next: 0x1000 }
    }

    /// Allocates a fresh region of `len` bytes, aligned to a cache line.
    ///
    /// # Panics
    ///
    /// Panics if `len` is 0 or the space is exhausted (practically
    /// impossible with a 64-bit space).
    pub fn alloc_region(&mut self, len: u64) -> Region {
        assert!(len > 0, "cannot allocate an empty region");
        let base = (self.next + DEFAULT_LINE_SIZE - 1) & !(DEFAULT_LINE_SIZE - 1);
        assert!(
            base.checked_add(len).is_some() && base + len < Self::SYNC_BASE,
            "simulated address space exhausted"
        );
        self.next = base + len;
        Region { base, len }
    }

    /// Allocates a private region for `thread`. Identical to
    /// [`alloc_region`](Self::alloc_region); the thread id parameter exists
    /// to document intent at call sites and for future region bookkeeping.
    pub fn alloc_private(&mut self, _thread: ThreadId, len: u64) -> Region {
        self.alloc_region(len)
    }

    /// The memory word backing lock `lock` (one full line per lock).
    pub fn lock_addr(lock: LockId) -> Addr {
        Addr(Self::SYNC_BASE + (lock.0 as u64) * DEFAULT_LINE_SIZE)
    }

    /// The memory word backing barrier `barrier`.
    pub fn barrier_addr(barrier: BarrierId) -> Addr {
        Addr(Self::SYNC_BASE + 0x4000_0000 + (barrier.0 as u64) * DEFAULT_LINE_SIZE)
    }

    /// The memory word backing semaphore `sem`.
    pub fn sem_addr(sem: SemId) -> Addr {
        Addr(Self::SYNC_BASE + 0x8000_0000 + (sem.0 as u64) * DEFAULT_LINE_SIZE)
    }

    /// Returns `true` if `addr` lies in the synchronization-object region.
    /// Race detectors use this to exempt sync words from data-race checks.
    pub fn is_sync_addr(addr: Addr) -> bool {
        addr.0 >= Self::SYNC_BASE
    }
}

impl Default for AddressSpace {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_do_not_overlap() {
        let mut space = AddressSpace::new();
        let a = space.alloc_region(100);
        let b = space.alloc_region(100);
        let c = space.alloc_region(4096);
        for i in 0..100 {
            assert!(!b.contains(a.index(i)));
            assert!(!c.contains(a.index(i)));
            assert!(!a.contains(b.index(i)));
            assert!(!c.contains(b.index(i)));
        }
    }

    #[test]
    fn regions_are_line_aligned() {
        let mut space = AddressSpace::new();
        let a = space.alloc_region(1);
        let b = space.alloc_region(1);
        assert_eq!(a.base().0 % DEFAULT_LINE_SIZE, 0);
        assert_eq!(b.base().0 % DEFAULT_LINE_SIZE, 0);
        assert_ne!(a.base(), b.base());
    }

    #[test]
    fn region_index_wraps() {
        let mut space = AddressSpace::new();
        let r = space.alloc_region(64);
        assert_eq!(r.index(0), r.base());
        assert_eq!(r.index(64), r.base());
        assert_eq!(r.index(65), r.base().offset(1));
    }

    #[test]
    fn region_word_indexing() {
        let mut space = AddressSpace::new();
        let r = space.alloc_region(64);
        assert_eq!(r.word(0), r.base());
        assert_eq!(r.word(1), r.base().offset(8));
        assert_eq!(r.word(8), r.base()); // 8 words of 8 bytes wrap
    }

    #[test]
    fn region_line_count() {
        let mut space = AddressSpace::new();
        let r = space.alloc_region(64);
        assert_eq!(r.line_count(64), 1);
        let r2 = space.alloc_region(65);
        assert_eq!(r2.line_count(64), 2);
        let empty = Region::new(Addr(0), 0);
        assert_eq!(empty.line_count(64), 0);
        assert!(empty.is_empty());
    }

    #[test]
    fn sync_addrs_are_distinct_lines() {
        let l0 = AddressSpace::lock_addr(LockId(0));
        let l1 = AddressSpace::lock_addr(LockId(1));
        let b0 = AddressSpace::barrier_addr(BarrierId(0));
        let s0 = AddressSpace::sem_addr(SemId(0));
        assert_ne!(l0.line(64), l1.line(64));
        assert_ne!(l0.line(64), b0.line(64));
        assert_ne!(b0.line(64), s0.line(64));
        assert!(AddressSpace::is_sync_addr(l0));
        assert!(AddressSpace::is_sync_addr(b0));
        assert!(AddressSpace::is_sync_addr(s0));
    }

    #[test]
    fn data_addrs_are_not_sync() {
        let mut space = AddressSpace::new();
        let r = space.alloc_region(1 << 20);
        assert!(!AddressSpace::is_sync_addr(r.base()));
        assert!(!AddressSpace::is_sync_addr(r.index(r.len() - 1)));
    }
}

ddrace_json::json_struct!(Region { base, len });
ddrace_json::json_struct!(AddressSpace { next });
