//! Deterministic interleaving scheduler.
//!
//! The scheduler round-robins over runnable threads, executing up to a
//! quantum of operations per turn (optionally jittered by a seeded RNG so
//! different seeds expose different interleavings), and enforces blocking
//! semantics for locks, barriers, joins, and semaphores. Every executed
//! operation is delivered, in a single global order, to an
//! [`ExecutionListener`] — the hook through which the cache simulator, cost
//! model, and race detector observe the program.
//!
//! Determinism: given the same program and [`SchedulerConfig`], the event
//! sequence is bit-for-bit identical. Crucially the schedule depends only on
//! the *operations*, never on the listener or any cost accounting, so the
//! same seed yields the same interleaving whether analysis is on or off —
//! exactly what is needed to compare analysis modes apples-to-apples.

use crate::error::{BlockReason, ScheduleError};
use crate::op::{BarrierId, LockId, Op, SemId, ThreadId};
use crate::program::{Program, StartMode};
use crate::rng::Prng;
use crate::runqueue::RunQueue;
use std::collections::HashMap;

/// Configuration of the interleaving scheduler.
///
/// # Examples
///
/// ```
/// use ddrace_program::SchedulerConfig;
/// let cfg = SchedulerConfig { quantum: 16, seed: 42, jitter: true };
/// assert_eq!(cfg.quantum, 16);
/// let default = SchedulerConfig::default();
/// assert!(default.quantum >= 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedulerConfig {
    /// Maximum operations a thread executes per turn.
    pub quantum: u32,
    /// Seed for the jitter RNG.
    pub seed: u64,
    /// When `true`, each turn's quantum is drawn uniformly from
    /// `1..=quantum`, exposing more interleavings.
    pub jitter: bool,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            quantum: 32,
            seed: 0,
            jitter: false,
        }
    }
}

impl SchedulerConfig {
    /// A config with jitter enabled and the given seed; quantum stays at
    /// the default.
    pub fn jittered(seed: u64) -> Self {
        SchedulerConfig {
            jitter: true,
            seed,
            ..Self::default()
        }
    }
}

/// How [`Scheduler`] finds the next runnable thread.
///
/// Both strategies produce **bit-identical schedules** — the run-queue is
/// a faster index structure over the same round-robin order, not a policy
/// change — so this knob only trades picker cost. The legacy scan is kept
/// for the digest-equivalence suite and for measuring the run-queue's
/// speedup against a live baseline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum PickStrategy {
    /// Two-level bitmap run-queue: O(1) pick/block/unblock (the default).
    #[default]
    RunQueue,
    /// The original O(threads) status scan from the cursor.
    LegacyScan,
}

/// An observation delivered to an [`ExecutionListener`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event<'a> {
    /// A thread became runnable. `parent` is `None` only for the main
    /// thread; for every other thread it names the forker (or the main
    /// thread, under [`StartMode::AllStart`]).
    ThreadStarted {
        /// The thread that started.
        tid: ThreadId,
        /// The thread that created it, if any.
        parent: Option<ThreadId>,
    },
    /// A thread executed an operation. For blocking operations this is
    /// delivered when the operation *completes* (e.g. the lock is actually
    /// acquired), except barrier arrivals which are delivered on arrival.
    Op {
        /// The executing thread.
        tid: ThreadId,
        /// The operation.
        op: Op,
    },
    /// All participants arrived at a barrier and it released.
    BarrierReleased {
        /// The barrier that released.
        barrier: BarrierId,
        /// Every participant of this episode, in arrival order.
        participants: &'a [ThreadId],
    },
    /// A thread executed its last operation.
    ThreadFinished {
        /// The finished thread.
        tid: ThreadId,
    },
}

/// Receives the global event stream of a scheduled execution.
///
/// Implemented for closures: any `FnMut(Event<'_>)` is a listener.
pub trait ExecutionListener {
    /// Called for every event, in global execution order.
    fn on_event(&mut self, event: Event<'_>);
}

impl<F: FnMut(Event<'_>)> ExecutionListener for F {
    fn on_event(&mut self, event: Event<'_>) {
        self(event)
    }
}

/// A listener that discards all events. Useful for running a program only
/// for its scheduler-level statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullListener;

impl ExecutionListener for NullListener {
    fn on_event(&mut self, _event: Event<'_>) {}
}

/// Summary statistics of one scheduled execution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Total operations executed across all threads.
    pub ops_executed: u64,
    /// Operations executed per thread (indexed by thread id).
    pub per_thread_ops: Vec<u64>,
    /// Times a thread blocked (failed to complete an op immediately).
    pub blocks: u64,
    /// Scheduler turn changes.
    pub context_switches: u64,
    /// Barrier release episodes.
    pub barrier_episodes: u64,
    /// Direct lock handoffs from a releasing thread to a waiter.
    pub lock_handoffs: u64,
    /// Threads that were never started (declared but never forked).
    pub orphan_threads: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    NotStarted,
    Runnable,
    Blocked(BlockReason),
    Finished,
}

struct ThreadState {
    stream: Box<dyn crate::program::OpStream>,
    status: Status,
    /// An op whose blocking condition has been satisfied while the thread
    /// was blocked; its event is emitted when the thread is next scheduled.
    pending_emit: Option<Op>,
    held_locks: HeldLocks,
}

/// How many held locks fit before spilling to the heap. Real workloads
/// nest at most two or three.
const HELD_INLINE: usize = 4;

/// A thread's held-lock multiset in acquisition order.
///
/// The first [`HELD_INLINE`] locks live inline in the thread state; only
/// pathological nestings touch the heap. Order is preserved across
/// removals so the `FinishedHoldingLocks` diagnostic lists locks in the
/// order they were taken.
#[derive(Debug)]
struct HeldLocks {
    inline: [LockId; HELD_INLINE],
    inline_len: u8,
    spill: Vec<LockId>,
}

impl Default for HeldLocks {
    fn default() -> Self {
        HeldLocks {
            inline: [LockId(0); HELD_INLINE],
            inline_len: 0,
            spill: Vec::new(),
        }
    }
}

impl HeldLocks {
    fn is_empty(&self) -> bool {
        self.inline_len == 0 && self.spill.is_empty()
    }

    fn push(&mut self, lock: LockId) {
        if self.spill.is_empty() && (self.inline_len as usize) < HELD_INLINE {
            self.inline[self.inline_len as usize] = lock;
            self.inline_len += 1;
        } else {
            self.spill.push(lock);
        }
    }

    /// Removes every occurrence of `lock`, preserving the order of the
    /// rest (spilled locks slide forward into freed inline slots).
    fn remove(&mut self, lock: LockId) {
        let mut kept = 0usize;
        for i in 0..self.inline_len as usize {
            if self.inline[i] != lock {
                self.inline[kept] = self.inline[i];
                kept += 1;
            }
        }
        self.inline_len = kept as u8;
        if !self.spill.is_empty() {
            self.spill.retain(|&l| l != lock);
            while (self.inline_len as usize) < HELD_INLINE && !self.spill.is_empty() {
                self.inline[self.inline_len as usize] = self.spill.remove(0);
                self.inline_len += 1;
            }
        }
    }

    /// Drains every held lock, in acquisition order.
    fn take_all(&mut self) -> Vec<LockId> {
        let mut all = self.inline[..self.inline_len as usize].to_vec();
        all.append(&mut self.spill);
        self.inline_len = 0;
        all
    }
}

#[derive(Debug, Default)]
struct LockState {
    holder: Option<ThreadId>,
    waiters: std::collections::VecDeque<ThreadId>,
}

#[derive(Debug, Default)]
struct BarrierState {
    expected: u32,
    arrived: Vec<ThreadId>,
}

#[derive(Debug, Default)]
struct SemState {
    count: u64,
    waiters: std::collections::VecDeque<ThreadId>,
}

/// Executes a [`Program`], delivering events to a listener.
///
/// See the crate-level documentation for semantics. Use
/// [`Scheduler::run`] for the common case; the scheduler is consumed by a
/// run.
///
/// # Examples
///
/// ```
/// use ddrace_program::{Program, ProgramBuilder, Scheduler, SchedulerConfig, ThreadId, Event};
///
/// let mut b = ProgramBuilder::new();
/// let x = b.alloc_shared(8).base();
/// let t1 = b.add_thread();
/// b.on(ThreadId::MAIN).fork(t1).join(t1).read(x);
/// b.on(t1).write(x);
///
/// let mut ops = 0u32;
/// let stats = Scheduler::new(b.build(), SchedulerConfig::default())
///     .run(&mut |event: Event<'_>| {
///         if matches!(event, Event::Op { .. }) { ops += 1; }
///     })
///     .unwrap();
/// assert_eq!(ops, 4); // fork, write, join, read
/// assert_eq!(stats.ops_executed, 4);
/// ```
pub struct Scheduler {
    threads: Vec<ThreadState>,
    locks: HashMap<LockId, LockState>,
    barriers: HashMap<BarrierId, BarrierState>,
    sems: HashMap<SemId, SemState>,
    join_waiters: Vec<Vec<ThreadId>>,
    start_mode: StartMode,
    config: SchedulerConfig,
    rng: Prng,
    stats: RunStats,
    cursor: usize,
    /// Mirror of the `Runnable` statuses; kept in sync by the status
    /// helpers regardless of strategy so the picker can trust it.
    runnable: RunQueue,
    pick_strategy: PickStrategy,
}

impl Scheduler {
    /// Creates a scheduler for `program`.
    ///
    /// # Panics
    ///
    /// Panics if `config.quantum` is 0.
    pub fn new(program: Program, config: SchedulerConfig) -> Self {
        assert!(config.quantum >= 1, "scheduler quantum must be at least 1");
        let (streams, start_mode) = program.into_parts();
        let n = streams.len();
        let threads = streams
            .into_iter()
            .map(|stream| ThreadState {
                stream,
                status: Status::NotStarted,
                pending_emit: None,
                held_locks: HeldLocks::default(),
            })
            .collect();
        Scheduler {
            threads,
            locks: HashMap::new(),
            barriers: HashMap::new(),
            sems: HashMap::new(),
            join_waiters: vec![Vec::new(); n],
            start_mode,
            config,
            rng: Prng::seed_from_u64(config.seed),
            stats: RunStats {
                per_thread_ops: vec![0; n],
                ..RunStats::default()
            },
            cursor: 0,
            runnable: RunQueue::new(n),
            pick_strategy: PickStrategy::default(),
        }
    }

    /// Selects how the next runnable thread is found. Both strategies
    /// yield the same schedule (see [`PickStrategy`]); the default is the
    /// O(1) run-queue.
    pub fn with_pick_strategy(mut self, strategy: PickStrategy) -> Self {
        self.pick_strategy = strategy;
        self
    }

    /// Runs the program to completion.
    ///
    /// # Errors
    ///
    /// Returns a [`ScheduleError`] if the program deadlocks or misuses a
    /// synchronization object (see the error type for the full list).
    pub fn run<L: ExecutionListener + ?Sized>(
        mut self,
        listener: &mut L,
    ) -> Result<RunStats, ScheduleError> {
        self.start_initial_threads(listener);
        loop {
            let Some(tid) = self.pick_next_runnable() else {
                if self.all_started_finished() {
                    self.stats.orphan_threads = self
                        .threads
                        .iter()
                        .filter(|t| t.status == Status::NotStarted)
                        .count() as u32;
                    return Ok(self.stats);
                }
                return Err(self.deadlock_error());
            };
            self.stats.context_switches += 1;
            let quantum = if self.config.jitter {
                self.rng.range_u32(1, self.config.quantum)
            } else {
                self.config.quantum
            };
            for _ in 0..quantum {
                match self.step_thread(tid, listener)? {
                    StepOutcome::Executed => {}
                    StepOutcome::Blocked | StepOutcome::Finished => break,
                }
            }
        }
    }

    fn start_initial_threads<L: ExecutionListener + ?Sized>(&mut self, listener: &mut L) {
        self.set_runnable(ThreadId::MAIN);
        listener.on_event(Event::ThreadStarted {
            tid: ThreadId::MAIN,
            parent: None,
        });
        if self.start_mode == StartMode::AllStart {
            for i in 1..self.threads.len() {
                let tid = ThreadId::new(i as u32);
                self.set_runnable(tid);
                listener.on_event(Event::ThreadStarted {
                    tid,
                    parent: Some(ThreadId::MAIN),
                });
            }
        }
    }

    /// Marks `tid` runnable and queues it. Idempotent: re-waking an
    /// already-runnable thread (e.g. the last arriver of a barrier it
    /// itself released) leaves the queue untouched.
    fn set_runnable(&mut self, tid: ThreadId) {
        let state = &mut self.threads[tid.index()];
        if state.status != Status::Runnable {
            state.status = Status::Runnable;
            self.runnable.insert(tid.index());
        }
    }

    /// Blocks `tid` (dequeueing it) and counts the block.
    fn set_blocked(&mut self, tid: ThreadId, reason: BlockReason) {
        self.threads[tid.index()].status = Status::Blocked(reason);
        self.runnable.remove(tid.index());
        self.stats.blocks += 1;
    }

    /// Marks `tid` finished and dequeues it for good.
    fn set_finished(&mut self, tid: ThreadId) {
        self.threads[tid.index()].status = Status::Finished;
        self.runnable.remove(tid.index());
    }

    fn pick_next_runnable(&mut self) -> Option<ThreadId> {
        let n = self.threads.len();
        if n == 0 {
            return None;
        }
        let picked = match self.pick_strategy {
            PickStrategy::RunQueue => {
                let picked = self.runnable.next_cyclic(self.cursor);
                debug_assert_eq!(picked, self.scan_pick(), "run-queue diverged from scan");
                picked
            }
            PickStrategy::LegacyScan => self.scan_pick(),
        };
        let i = picked?;
        self.cursor = (i + 1) % n;
        Some(ThreadId::new(i as u32))
    }

    /// The original picker: probe statuses in index order from the cursor.
    fn scan_pick(&self) -> Option<usize> {
        let n = self.threads.len();
        (0..n)
            .map(|off| (self.cursor + off) % n)
            .find(|&i| self.threads[i].status == Status::Runnable)
    }

    fn all_started_finished(&self) -> bool {
        self.threads
            .iter()
            .all(|t| matches!(t.status, Status::Finished | Status::NotStarted))
    }

    fn deadlock_error(&self) -> ScheduleError {
        let blocked = self
            .threads
            .iter()
            .enumerate()
            .filter_map(|(i, t)| match t.status {
                Status::Blocked(reason) => Some((ThreadId::new(i as u32), reason)),
                _ => None,
            })
            .collect();
        ScheduleError::Deadlock { blocked }
    }

    fn step_thread<L: ExecutionListener + ?Sized>(
        &mut self,
        tid: ThreadId,
        listener: &mut L,
    ) -> Result<StepOutcome, ScheduleError> {
        // First emit an op whose blocking condition was satisfied while we
        // were off-cpu (lock handoff, semaphore transfer, join target done).
        if let Some(op) = self.threads[tid.index()].pending_emit.take() {
            self.record_op(tid);
            listener.on_event(Event::Op { tid, op });
            return Ok(StepOutcome::Executed);
        }
        let Some(op) = self.threads[tid.index()].stream.next_op() else {
            return self
                .finish_thread(tid, listener)
                .map(|()| StepOutcome::Finished);
        };
        self.execute_op(tid, op, listener)
    }

    fn execute_op<L: ExecutionListener + ?Sized>(
        &mut self,
        tid: ThreadId,
        op: Op,
        listener: &mut L,
    ) -> Result<StepOutcome, ScheduleError> {
        match op {
            Op::Read { .. } | Op::Write { .. } | Op::AtomicRmw { .. } | Op::Compute { .. } => {
                self.record_op(tid);
                listener.on_event(Event::Op { tid, op });
                Ok(StepOutcome::Executed)
            }
            Op::Lock { lock } => self.do_lock(tid, lock, op, listener),
            Op::Unlock { lock } => self.do_unlock(tid, lock, op, listener),
            Op::Barrier {
                barrier,
                participants,
            } => self.do_barrier(tid, barrier, participants, op, listener),
            Op::Fork { child } => self.do_fork(tid, child, op, listener),
            Op::Join { child } => self.do_join(tid, child, op, listener),
            Op::Post { sem } => self.do_post(tid, sem, op, listener),
            Op::WaitSem { sem } => self.do_wait_sem(tid, sem, op, listener),
        }
    }

    fn do_lock<L: ExecutionListener + ?Sized>(
        &mut self,
        tid: ThreadId,
        lock: LockId,
        op: Op,
        listener: &mut L,
    ) -> Result<StepOutcome, ScheduleError> {
        let state = self.locks.entry(lock).or_default();
        match state.holder {
            None => {
                state.holder = Some(tid);
                self.threads[tid.index()].held_locks.push(lock);
                self.record_op(tid);
                listener.on_event(Event::Op { tid, op });
                Ok(StepOutcome::Executed)
            }
            Some(holder) if holder == tid => Err(ScheduleError::RelockHeld { tid, lock }),
            Some(_) => {
                state.waiters.push_back(tid);
                self.set_blocked(tid, BlockReason::Lock(lock));
                Ok(StepOutcome::Blocked)
            }
        }
    }

    fn do_unlock<L: ExecutionListener + ?Sized>(
        &mut self,
        tid: ThreadId,
        lock: LockId,
        op: Op,
        listener: &mut L,
    ) -> Result<StepOutcome, ScheduleError> {
        // One lock-state lookup: validate the holder, pop the next waiter,
        // and retarget ownership before the borrow ends.
        let state = self.locks.entry(lock).or_default();
        if state.holder != Some(tid) {
            return Err(ScheduleError::UnlockNotHeld { tid, lock });
        }
        let next = state.waiters.pop_front();
        state.holder = next;
        self.record_op(tid);
        listener.on_event(Event::Op { tid, op });
        self.threads[tid.index()].held_locks.remove(lock);
        if let Some(waiter) = next {
            // Direct FIFO handoff: the waiter owns the lock immediately;
            // its Lock event is emitted when it is next scheduled. One
            // status write wakes it.
            let w = &mut self.threads[waiter.index()];
            w.held_locks.push(lock);
            w.pending_emit = Some(Op::Lock { lock });
            self.set_runnable(waiter);
            self.stats.lock_handoffs += 1;
        }
        Ok(StepOutcome::Executed)
    }

    fn do_barrier<L: ExecutionListener + ?Sized>(
        &mut self,
        tid: ThreadId,
        barrier: BarrierId,
        participants: u32,
        op: Op,
        listener: &mut L,
    ) -> Result<StepOutcome, ScheduleError> {
        if participants == 0 {
            return Err(ScheduleError::BarrierMismatch {
                barrier,
                expected: 1,
                found: 0,
            });
        }
        let state = self.barriers.entry(barrier).or_default();
        if state.arrived.is_empty() {
            state.expected = participants;
        } else if state.expected != participants {
            return Err(ScheduleError::BarrierMismatch {
                barrier,
                expected: state.expected,
                found: participants,
            });
        }
        if state.arrived.len() as u32 >= state.expected {
            return Err(ScheduleError::BarrierOverflow {
                barrier,
                participants,
            });
        }
        state.arrived.push(tid);
        // The arrival itself is always visible (the detector accumulates
        // clocks as threads arrive).
        self.record_op(tid);
        listener.on_event(Event::Op { tid, op });
        let state = self
            .barriers
            .get_mut(&barrier)
            .expect("barrier state exists");
        if state.arrived.len() as u32 == state.expected {
            let released = std::mem::take(&mut state.arrived);
            self.stats.barrier_episodes += 1;
            for &t in &released {
                self.set_runnable(t);
            }
            listener.on_event(Event::BarrierReleased {
                barrier,
                participants: &released,
            });
            Ok(StepOutcome::Executed)
        } else {
            self.set_blocked(tid, BlockReason::Barrier(barrier));
            Ok(StepOutcome::Blocked)
        }
    }

    fn do_fork<L: ExecutionListener + ?Sized>(
        &mut self,
        tid: ThreadId,
        child: ThreadId,
        op: Op,
        listener: &mut L,
    ) -> Result<StepOutcome, ScheduleError> {
        if child.index() >= self.threads.len() {
            return Err(ScheduleError::ForkUnknownThread { tid, child });
        }
        if self.threads[child.index()].status != Status::NotStarted {
            return Err(ScheduleError::ForkAlreadyStarted { tid, child });
        }
        self.record_op(tid);
        listener.on_event(Event::Op { tid, op });
        self.set_runnable(child);
        listener.on_event(Event::ThreadStarted {
            tid: child,
            parent: Some(tid),
        });
        Ok(StepOutcome::Executed)
    }

    fn do_join<L: ExecutionListener + ?Sized>(
        &mut self,
        tid: ThreadId,
        child: ThreadId,
        op: Op,
        listener: &mut L,
    ) -> Result<StepOutcome, ScheduleError> {
        if child == tid || child.index() >= self.threads.len() {
            return Err(ScheduleError::JoinInvalid { tid, child });
        }
        if self.threads[child.index()].status == Status::Finished {
            self.record_op(tid);
            listener.on_event(Event::Op { tid, op });
            Ok(StepOutcome::Executed)
        } else {
            self.join_waiters[child.index()].push(tid);
            self.threads[tid.index()].pending_emit = Some(op);
            self.set_blocked(tid, BlockReason::Join(child));
            Ok(StepOutcome::Blocked)
        }
    }

    fn do_post<L: ExecutionListener + ?Sized>(
        &mut self,
        tid: ThreadId,
        sem: SemId,
        op: Op,
        listener: &mut L,
    ) -> Result<StepOutcome, ScheduleError> {
        self.record_op(tid);
        listener.on_event(Event::Op { tid, op });
        let state = self.sems.entry(sem).or_default();
        if let Some(waiter) = state.waiters.pop_front() {
            // Transfer the post directly to the longest waiter.
            self.threads[waiter.index()].pending_emit = Some(Op::WaitSem { sem });
            self.set_runnable(waiter);
        } else {
            state.count += 1;
        }
        Ok(StepOutcome::Executed)
    }

    fn do_wait_sem<L: ExecutionListener + ?Sized>(
        &mut self,
        tid: ThreadId,
        sem: SemId,
        op: Op,
        listener: &mut L,
    ) -> Result<StepOutcome, ScheduleError> {
        let state = self.sems.entry(sem).or_default();
        if state.count > 0 {
            state.count -= 1;
            self.record_op(tid);
            listener.on_event(Event::Op { tid, op });
            Ok(StepOutcome::Executed)
        } else {
            state.waiters.push_back(tid);
            self.set_blocked(tid, BlockReason::Semaphore(sem));
            Ok(StepOutcome::Blocked)
        }
    }

    fn finish_thread<L: ExecutionListener + ?Sized>(
        &mut self,
        tid: ThreadId,
        listener: &mut L,
    ) -> Result<(), ScheduleError> {
        let state = &mut self.threads[tid.index()];
        if !state.held_locks.is_empty() {
            return Err(ScheduleError::FinishedHoldingLocks {
                tid,
                locks: state.held_locks.take_all(),
            });
        }
        self.set_finished(tid);
        listener.on_event(Event::ThreadFinished { tid });
        for waiter in std::mem::take(&mut self.join_waiters[tid.index()]) {
            // The waiter's pending Join op is already stored; just wake it.
            self.set_runnable(waiter);
        }
        Ok(())
    }

    fn record_op(&mut self, tid: ThreadId) {
        self.stats.ops_executed += 1;
        self.stats.per_thread_ops[tid.index()] += 1;
    }
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("threads", &self.threads.len())
            .field("config", &self.config)
            .field("stats", &self.stats)
            .finish()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StepOutcome {
    Executed,
    Blocked,
    Finished,
}

/// Runs `program` with `config`, delivering events to `listener`.
/// Convenience wrapper over [`Scheduler::new`] + [`Scheduler::run`].
///
/// # Errors
///
/// Propagates any [`ScheduleError`] from the run.
pub fn run_program<L: ExecutionListener + ?Sized>(
    program: Program,
    config: SchedulerConfig,
    listener: &mut L,
) -> Result<RunStats, ScheduleError> {
    Scheduler::new(program, config).run(listener)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    fn collect_events(b: ProgramBuilder, config: SchedulerConfig) -> Vec<String> {
        let mut events = Vec::new();
        run_program(b.build(), config, &mut |e: Event<'_>| {
            events.push(match e {
                Event::ThreadStarted { tid, parent } => match parent {
                    Some(p) => format!("start {tid} by {p}"),
                    None => format!("start {tid}"),
                },
                Event::Op { tid, op } => format!("{tid}: {op}"),
                Event::BarrierReleased {
                    barrier,
                    participants,
                } => {
                    format!("released {barrier} x{}", participants.len())
                }
                Event::ThreadFinished { tid } => format!("finish {tid}"),
            });
        })
        .unwrap();
        events
    }

    #[test]
    fn single_thread_executes_in_order() {
        let mut b = ProgramBuilder::new();
        let x = b.alloc_shared(64).base();
        b.on(ThreadId::MAIN).write(x).read(x).compute(10);
        let events = collect_events(b, SchedulerConfig::default());
        assert_eq!(
            events,
            vec![
                "start T0".to_string(),
                format!("T0: write {x}"),
                format!("T0: read {x}"),
                "T0: compute 10".to_string(),
                "finish T0".to_string(),
            ]
        );
    }

    #[test]
    fn fork_starts_child_and_join_blocks() {
        let mut b = ProgramBuilder::new();
        let t1 = b.add_thread();
        b.on(ThreadId::MAIN).fork(t1).join(t1).compute(1);
        b.on(t1).compute(2);
        let events = collect_events(b, SchedulerConfig::default());
        // Main forks, tries to join and blocks; t1 runs and finishes; main's
        // join completes afterwards.
        let join_pos = events.iter().position(|e| e == "T0: join T1").unwrap();
        let finish_pos = events.iter().position(|e| e == "finish T1").unwrap();
        assert!(
            finish_pos < join_pos,
            "join must complete after child finishes: {events:?}"
        );
    }

    #[test]
    fn join_of_already_finished_thread_is_immediate() {
        let mut b = ProgramBuilder::new();
        let t1 = b.add_thread();
        // Give main enough filler that t1 finishes before the join, with
        // quantum 1 forcing alternation.
        b.on(ThreadId::MAIN)
            .fork(t1)
            .compute(1)
            .compute(1)
            .compute(1)
            .join(t1);
        b.on(t1).compute(2);
        let cfg = SchedulerConfig {
            quantum: 1,
            ..SchedulerConfig::default()
        };
        let events = collect_events(b, cfg);
        assert!(events.contains(&"T0: join T1".to_string()));
    }

    #[test]
    fn lock_mutual_exclusion_and_handoff() {
        let mut b = ProgramBuilder::new();
        b.all_start();
        let l = b.new_lock();
        let x = b.alloc_shared(8).base();
        let t1 = b.add_thread();
        b.on(ThreadId::MAIN)
            .lock(l)
            .write(x)
            .compute(1)
            .compute(1)
            .unlock(l);
        b.on(t1).lock(l).write(x).unlock(l);
        let cfg = SchedulerConfig {
            quantum: 1,
            ..SchedulerConfig::default()
        };
        let events = collect_events(b, cfg);
        // T1's lock acquisition must come after T0's unlock.
        let unlock0 = events.iter().position(|e| e == "T0: unlock L0").unwrap();
        let lock1 = events.iter().position(|e| e == "T1: lock L0").unwrap();
        assert!(unlock0 < lock1, "{events:?}");
    }

    #[test]
    fn barrier_releases_all_participants_at_once() {
        let mut b = ProgramBuilder::new();
        b.all_start();
        let bar = b.new_barrier();
        let t1 = b.add_thread();
        let t2 = b.add_thread();
        b.on(ThreadId::MAIN).barrier(bar, 3).compute(1);
        b.on(t1).barrier(bar, 3).compute(1);
        b.on(t2).barrier(bar, 3).compute(1);
        let events = collect_events(b, SchedulerConfig::default());
        let release = events
            .iter()
            .position(|e| e.starts_with("released B0"))
            .unwrap();
        assert_eq!(events[release], "released B0 x3");
        // No compute happens before the release.
        for e in &events[..release] {
            assert!(!e.contains("compute"), "{events:?}");
        }
    }

    #[test]
    fn barrier_is_reusable() {
        let mut b = ProgramBuilder::new();
        b.all_start();
        let bar = b.new_barrier();
        let t1 = b.add_thread();
        b.on(ThreadId::MAIN).barrier(bar, 2).barrier(bar, 2);
        b.on(t1).barrier(bar, 2).barrier(bar, 2);
        let events = collect_events(b, SchedulerConfig::default());
        let releases = events
            .iter()
            .filter(|e| e.starts_with("released B0"))
            .count();
        assert_eq!(releases, 2);
    }

    #[test]
    fn semaphore_post_before_wait() {
        let mut b = ProgramBuilder::new();
        b.all_start();
        let s = b.new_sem();
        let t1 = b.add_thread();
        b.on(ThreadId::MAIN).post(s);
        b.on(t1).wait_sem(s);
        let stats = run_program(b.build(), SchedulerConfig::default(), &mut NullListener).unwrap();
        assert_eq!(stats.ops_executed, 2);
    }

    #[test]
    fn semaphore_wait_blocks_until_post() {
        let mut b = ProgramBuilder::new();
        b.all_start();
        let s = b.new_sem();
        let t1 = b.add_thread();
        b.on(ThreadId::MAIN).compute(1).compute(1).post(s);
        b.on(t1).wait_sem(s).compute(5);
        let cfg = SchedulerConfig {
            quantum: 1,
            ..SchedulerConfig::default()
        };
        let events = collect_events(b, cfg);
        let post = events.iter().position(|e| e == "T0: post S0").unwrap();
        let wait = events.iter().position(|e| e == "T1: wait S0").unwrap();
        assert!(post < wait, "{events:?}");
    }

    #[test]
    fn deadlock_is_reported() {
        let mut b = ProgramBuilder::new();
        b.all_start();
        let s = b.new_sem();
        b.on(ThreadId::MAIN).wait_sem(s);
        let err =
            run_program(b.build(), SchedulerConfig::default(), &mut NullListener).unwrap_err();
        match err {
            ScheduleError::Deadlock { blocked } => {
                assert_eq!(
                    blocked,
                    vec![(ThreadId::MAIN, BlockReason::Semaphore(SemId(0)))]
                );
            }
            other => panic!("expected deadlock, got {other}"),
        }
    }

    #[test]
    fn abba_deadlock_is_reported() {
        let mut b = ProgramBuilder::new();
        b.all_start();
        let la = b.new_lock();
        let lb = b.new_lock();
        let t1 = b.add_thread();
        b.on(ThreadId::MAIN)
            .lock(la)
            .compute(1)
            .lock(lb)
            .unlock(lb)
            .unlock(la);
        b.on(t1).lock(lb).compute(1).lock(la).unlock(la).unlock(lb);
        let cfg = SchedulerConfig {
            quantum: 2,
            ..SchedulerConfig::default()
        };
        let err = run_program(b.build(), cfg, &mut NullListener).unwrap_err();
        assert!(matches!(err, ScheduleError::Deadlock { .. }), "{err}");
    }

    #[test]
    fn unlock_not_held_is_error() {
        let mut b = ProgramBuilder::new();
        let l = b.new_lock();
        b.on(ThreadId::MAIN).unlock(l);
        let err =
            run_program(b.build(), SchedulerConfig::default(), &mut NullListener).unwrap_err();
        assert_eq!(
            err,
            ScheduleError::UnlockNotHeld {
                tid: ThreadId::MAIN,
                lock: l
            }
        );
    }

    #[test]
    fn relock_is_error() {
        let mut b = ProgramBuilder::new();
        let l = b.new_lock();
        b.on(ThreadId::MAIN).lock(l).lock(l);
        let err =
            run_program(b.build(), SchedulerConfig::default(), &mut NullListener).unwrap_err();
        assert_eq!(
            err,
            ScheduleError::RelockHeld {
                tid: ThreadId::MAIN,
                lock: l
            }
        );
    }

    #[test]
    fn finish_holding_lock_is_error() {
        let mut b = ProgramBuilder::new();
        let l = b.new_lock();
        b.on(ThreadId::MAIN).lock(l);
        let err =
            run_program(b.build(), SchedulerConfig::default(), &mut NullListener).unwrap_err();
        assert!(matches!(err, ScheduleError::FinishedHoldingLocks { .. }));
    }

    #[test]
    fn fork_errors() {
        let mut b = ProgramBuilder::new();
        b.on(ThreadId::MAIN).fork(ThreadId::new(9));
        let err =
            run_program(b.build(), SchedulerConfig::default(), &mut NullListener).unwrap_err();
        assert!(matches!(err, ScheduleError::ForkUnknownThread { .. }));

        let mut b = ProgramBuilder::new();
        let t1 = b.add_thread();
        b.on(ThreadId::MAIN).fork(t1).fork(t1);
        b.on(t1).compute(1);
        let err =
            run_program(b.build(), SchedulerConfig::default(), &mut NullListener).unwrap_err();
        assert!(matches!(err, ScheduleError::ForkAlreadyStarted { .. }));
    }

    #[test]
    fn join_self_is_error() {
        let mut b = ProgramBuilder::new();
        b.on(ThreadId::MAIN).join(ThreadId::MAIN);
        let err =
            run_program(b.build(), SchedulerConfig::default(), &mut NullListener).unwrap_err();
        assert!(matches!(err, ScheduleError::JoinInvalid { .. }));
    }

    #[test]
    fn barrier_mismatch_is_error() {
        let mut b = ProgramBuilder::new();
        b.all_start();
        let bar = b.new_barrier();
        let t1 = b.add_thread();
        b.on(ThreadId::MAIN).barrier(bar, 2);
        b.on(t1).barrier(bar, 3);
        let err =
            run_program(b.build(), SchedulerConfig::default(), &mut NullListener).unwrap_err();
        assert!(matches!(err, ScheduleError::BarrierMismatch { .. }));
    }

    #[test]
    fn orphan_threads_are_counted_not_fatal() {
        let mut b = ProgramBuilder::new();
        let _t1 = b.add_thread(); // declared, never forked
        b.on(ThreadId::MAIN).compute(1);
        let stats = run_program(b.build(), SchedulerConfig::default(), &mut NullListener).unwrap();
        assert_eq!(stats.orphan_threads, 1);
    }

    #[test]
    fn deterministic_across_runs_with_same_seed() {
        let build = || {
            let mut b = ProgramBuilder::new();
            b.all_start();
            let l = b.new_lock();
            let x = b.alloc_shared(256);
            let t1 = b.add_thread();
            let t2 = b.add_thread();
            for t in [ThreadId::MAIN, t1, t2] {
                let mut c = b.on(t);
                for i in 0..50 {
                    c = c.read(x.index(i * 8)).compute(1);
                    if i % 10 == 0 {
                        c = c.lock(l).write(x.index(i)).unlock(l);
                    }
                }
            }
            b.build()
        };
        let cfg = SchedulerConfig {
            quantum: 4,
            seed: 123,
            jitter: true,
        };
        let run = |program| {
            let mut trace = Vec::new();
            run_program(program, cfg, &mut |e: Event<'_>| {
                if let Event::Op { tid, op } = e {
                    trace.push((tid, op));
                }
            })
            .unwrap();
            trace
        };
        assert_eq!(run(build()), run(build()));
    }

    #[test]
    fn different_seeds_change_interleaving() {
        let build = || {
            let mut b = ProgramBuilder::new();
            b.all_start();
            let x = b.alloc_shared(8).base();
            let t1 = b.add_thread();
            for t in [ThreadId::MAIN, t1] {
                let mut c = b.on(t);
                for _ in 0..100 {
                    c = c.write(x);
                }
            }
            b.build()
        };
        let trace_for = |seed| {
            let cfg = SchedulerConfig {
                quantum: 8,
                seed,
                jitter: true,
            };
            let mut trace = Vec::new();
            run_program(build(), cfg, &mut |e: Event<'_>| {
                if let Event::Op { tid, .. } = e {
                    trace.push(tid);
                }
            })
            .unwrap();
            trace
        };
        assert_ne!(trace_for(1), trace_for(2));
    }

    #[test]
    fn stats_count_blocks_and_handoffs() {
        let mut b = ProgramBuilder::new();
        b.all_start();
        let l = b.new_lock();
        let t1 = b.add_thread();
        b.on(ThreadId::MAIN)
            .lock(l)
            .compute(1)
            .compute(1)
            .compute(1)
            .unlock(l);
        b.on(t1).lock(l).unlock(l);
        let cfg = SchedulerConfig {
            quantum: 2,
            ..SchedulerConfig::default()
        };
        let stats = run_program(b.build(), cfg, &mut NullListener).unwrap();
        assert!(stats.blocks >= 1);
        assert_eq!(stats.lock_handoffs, 1);
        assert!(stats.context_switches >= 2);
        assert_eq!(stats.per_thread_ops.len(), 2);
        assert_eq!(stats.per_thread_ops.iter().sum::<u64>(), stats.ops_executed);
    }

    #[test]
    fn pick_strategies_produce_identical_traces() {
        // A lock-contended, barrier-synced, jittered program: every status
        // transition kind exercised, then both pickers must agree event
        // for event (the debug build additionally cross-checks every pick
        // inside pick_next_runnable).
        let build = || {
            let mut b = ProgramBuilder::new();
            b.all_start();
            let l = b.new_lock();
            let bar = b.new_barrier();
            let s = b.new_sem();
            let x = b.alloc_shared(512);
            let ts: Vec<ThreadId> = (0..5).map(|_| b.add_thread()).collect();
            b.on(ThreadId::MAIN).post(s).barrier(bar, 6).compute(3);
            for (k, &t) in ts.iter().enumerate() {
                let k = k as u64;
                let mut c = b.on(t);
                for i in 0..20u64 {
                    c = c.read(x.index((k * 20 + i) * 4)).compute(1);
                    if i % 5 == 0 {
                        c = c.lock(l).write(x.index(k * 8)).unlock(l);
                    }
                }
                c = c.barrier(bar, 6);
                if k == 0 {
                    c.wait_sem(s);
                }
            }
            b.build()
        };
        let trace_with = |strategy: PickStrategy| {
            let mut trace = Vec::new();
            let cfg = SchedulerConfig {
                quantum: 3,
                seed: 99,
                jitter: true,
            };
            let stats = Scheduler::new(build(), cfg)
                .with_pick_strategy(strategy)
                .run(&mut |e: Event<'_>| {
                    trace.push(format!("{e:?}"));
                })
                .unwrap();
            (trace, stats)
        };
        assert_eq!(
            trace_with(PickStrategy::RunQueue),
            trace_with(PickStrategy::LegacyScan)
        );
    }

    #[test]
    fn many_held_locks_spill_and_release_in_order() {
        // Nest more locks than the inline capacity, then release them
        // out of order; mutual exclusion and the finish check must hold.
        let mut b = ProgramBuilder::new();
        let locks: Vec<LockId> = (0..7).map(|_| b.new_lock()).collect();
        let mut c = b.on(ThreadId::MAIN);
        for &l in &locks {
            c = c.lock(l);
        }
        // Release interleaved: evens first, then odds.
        for &l in locks.iter().step_by(2) {
            c = c.unlock(l);
        }
        for &l in locks.iter().skip(1).step_by(2) {
            c = c.unlock(l);
        }
        let stats = run_program(b.build(), SchedulerConfig::default(), &mut NullListener).unwrap();
        assert_eq!(stats.ops_executed, 14);
    }

    #[test]
    fn finish_holding_spilled_locks_reports_all_in_order() {
        let mut b = ProgramBuilder::new();
        let locks: Vec<LockId> = (0..6).map(|_| b.new_lock()).collect();
        let mut c = b.on(ThreadId::MAIN);
        for &l in &locks {
            c = c.lock(l);
        }
        let err =
            run_program(b.build(), SchedulerConfig::default(), &mut NullListener).unwrap_err();
        match err {
            ScheduleError::FinishedHoldingLocks { tid, locks: held } => {
                assert_eq!(tid, ThreadId::MAIN);
                assert_eq!(held, locks, "acquisition order preserved across spill");
            }
            other => panic!("expected FinishedHoldingLocks, got {other}"),
        }
    }

    #[test]
    #[should_panic(expected = "quantum must be at least 1")]
    fn zero_quantum_panics() {
        let b = ProgramBuilder::new();
        let _ = Scheduler::new(
            b.build(),
            SchedulerConfig {
                quantum: 0,
                ..Default::default()
            },
        );
    }
}

ddrace_json::json_struct!(RunStats {
    ops_executed,
    per_thread_ops,
    blocks,
    context_switches,
    barrier_episodes,
    lock_handoffs,
    orphan_threads,
});
