//! Deterministic interleaving scheduler.
//!
//! The scheduler round-robins over runnable threads, executing up to a
//! quantum of operations per turn (optionally jittered by a seeded RNG so
//! different seeds expose different interleavings), and enforces blocking
//! semantics for locks, barriers, joins, and semaphores. Every executed
//! operation is delivered, in a single global order, to an
//! [`ExecutionListener`] — the hook through which the cache simulator, cost
//! model, and race detector observe the program.
//!
//! Determinism: given the same program and [`SchedulerConfig`], the event
//! sequence is bit-for-bit identical. Crucially the schedule depends only on
//! the *operations*, never on the listener or any cost accounting, so the
//! same seed yields the same interleaving whether analysis is on or off —
//! exactly what is needed to compare analysis modes apples-to-apples.

use crate::error::{BlockReason, ScheduleError};
use crate::op::{BarrierId, LockId, Op, SemId, ThreadId};
use crate::program::{Program, StartMode};
use crate::rng::Prng;
use std::collections::HashMap;

/// Configuration of the interleaving scheduler.
///
/// # Examples
///
/// ```
/// use ddrace_program::SchedulerConfig;
/// let cfg = SchedulerConfig { quantum: 16, seed: 42, jitter: true };
/// assert_eq!(cfg.quantum, 16);
/// let default = SchedulerConfig::default();
/// assert!(default.quantum >= 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedulerConfig {
    /// Maximum operations a thread executes per turn.
    pub quantum: u32,
    /// Seed for the jitter RNG.
    pub seed: u64,
    /// When `true`, each turn's quantum is drawn uniformly from
    /// `1..=quantum`, exposing more interleavings.
    pub jitter: bool,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            quantum: 32,
            seed: 0,
            jitter: false,
        }
    }
}

impl SchedulerConfig {
    /// A config with jitter enabled and the given seed; quantum stays at
    /// the default.
    pub fn jittered(seed: u64) -> Self {
        SchedulerConfig {
            jitter: true,
            seed,
            ..Self::default()
        }
    }
}

/// An observation delivered to an [`ExecutionListener`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event<'a> {
    /// A thread became runnable. `parent` is `None` only for the main
    /// thread; for every other thread it names the forker (or the main
    /// thread, under [`StartMode::AllStart`]).
    ThreadStarted {
        /// The thread that started.
        tid: ThreadId,
        /// The thread that created it, if any.
        parent: Option<ThreadId>,
    },
    /// A thread executed an operation. For blocking operations this is
    /// delivered when the operation *completes* (e.g. the lock is actually
    /// acquired), except barrier arrivals which are delivered on arrival.
    Op {
        /// The executing thread.
        tid: ThreadId,
        /// The operation.
        op: Op,
    },
    /// All participants arrived at a barrier and it released.
    BarrierReleased {
        /// The barrier that released.
        barrier: BarrierId,
        /// Every participant of this episode, in arrival order.
        participants: &'a [ThreadId],
    },
    /// A thread executed its last operation.
    ThreadFinished {
        /// The finished thread.
        tid: ThreadId,
    },
}

/// Receives the global event stream of a scheduled execution.
///
/// Implemented for closures: any `FnMut(Event<'_>)` is a listener.
pub trait ExecutionListener {
    /// Called for every event, in global execution order.
    fn on_event(&mut self, event: Event<'_>);
}

impl<F: FnMut(Event<'_>)> ExecutionListener for F {
    fn on_event(&mut self, event: Event<'_>) {
        self(event)
    }
}

/// A listener that discards all events. Useful for running a program only
/// for its scheduler-level statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullListener;

impl ExecutionListener for NullListener {
    fn on_event(&mut self, _event: Event<'_>) {}
}

/// Summary statistics of one scheduled execution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Total operations executed across all threads.
    pub ops_executed: u64,
    /// Operations executed per thread (indexed by thread id).
    pub per_thread_ops: Vec<u64>,
    /// Times a thread blocked (failed to complete an op immediately).
    pub blocks: u64,
    /// Scheduler turn changes.
    pub context_switches: u64,
    /// Barrier release episodes.
    pub barrier_episodes: u64,
    /// Direct lock handoffs from a releasing thread to a waiter.
    pub lock_handoffs: u64,
    /// Threads that were never started (declared but never forked).
    pub orphan_threads: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    NotStarted,
    Runnable,
    Blocked(BlockReason),
    Finished,
}

struct ThreadState {
    stream: Box<dyn crate::program::OpStream>,
    status: Status,
    /// An op whose blocking condition has been satisfied while the thread
    /// was blocked; its event is emitted when the thread is next scheduled.
    pending_emit: Option<Op>,
    held_locks: Vec<LockId>,
}

#[derive(Debug, Default)]
struct LockState {
    holder: Option<ThreadId>,
    waiters: std::collections::VecDeque<ThreadId>,
}

#[derive(Debug, Default)]
struct BarrierState {
    expected: u32,
    arrived: Vec<ThreadId>,
}

#[derive(Debug, Default)]
struct SemState {
    count: u64,
    waiters: std::collections::VecDeque<ThreadId>,
}

/// Executes a [`Program`], delivering events to a listener.
///
/// See the crate-level documentation for semantics. Use
/// [`Scheduler::run`] for the common case; the scheduler is consumed by a
/// run.
///
/// # Examples
///
/// ```
/// use ddrace_program::{Program, ProgramBuilder, Scheduler, SchedulerConfig, ThreadId, Event};
///
/// let mut b = ProgramBuilder::new();
/// let x = b.alloc_shared(8).base();
/// let t1 = b.add_thread();
/// b.on(ThreadId::MAIN).fork(t1).join(t1).read(x);
/// b.on(t1).write(x);
///
/// let mut ops = 0u32;
/// let stats = Scheduler::new(b.build(), SchedulerConfig::default())
///     .run(&mut |event: Event<'_>| {
///         if matches!(event, Event::Op { .. }) { ops += 1; }
///     })
///     .unwrap();
/// assert_eq!(ops, 4); // fork, write, join, read
/// assert_eq!(stats.ops_executed, 4);
/// ```
pub struct Scheduler {
    threads: Vec<ThreadState>,
    locks: HashMap<LockId, LockState>,
    barriers: HashMap<BarrierId, BarrierState>,
    sems: HashMap<SemId, SemState>,
    join_waiters: Vec<Vec<ThreadId>>,
    start_mode: StartMode,
    config: SchedulerConfig,
    rng: Prng,
    stats: RunStats,
    cursor: usize,
}

impl Scheduler {
    /// Creates a scheduler for `program`.
    ///
    /// # Panics
    ///
    /// Panics if `config.quantum` is 0.
    pub fn new(program: Program, config: SchedulerConfig) -> Self {
        assert!(config.quantum >= 1, "scheduler quantum must be at least 1");
        let (streams, start_mode) = program.into_parts();
        let n = streams.len();
        let threads = streams
            .into_iter()
            .map(|stream| ThreadState {
                stream,
                status: Status::NotStarted,
                pending_emit: None,
                held_locks: Vec::new(),
            })
            .collect();
        Scheduler {
            threads,
            locks: HashMap::new(),
            barriers: HashMap::new(),
            sems: HashMap::new(),
            join_waiters: vec![Vec::new(); n],
            start_mode,
            config,
            rng: Prng::seed_from_u64(config.seed),
            stats: RunStats {
                per_thread_ops: vec![0; n],
                ..RunStats::default()
            },
            cursor: 0,
        }
    }

    /// Runs the program to completion.
    ///
    /// # Errors
    ///
    /// Returns a [`ScheduleError`] if the program deadlocks or misuses a
    /// synchronization object (see the error type for the full list).
    pub fn run<L: ExecutionListener + ?Sized>(
        mut self,
        listener: &mut L,
    ) -> Result<RunStats, ScheduleError> {
        self.start_initial_threads(listener);
        loop {
            let Some(tid) = self.pick_next_runnable() else {
                if self.all_started_finished() {
                    self.stats.orphan_threads = self
                        .threads
                        .iter()
                        .filter(|t| t.status == Status::NotStarted)
                        .count() as u32;
                    return Ok(self.stats);
                }
                return Err(self.deadlock_error());
            };
            self.stats.context_switches += 1;
            let quantum = if self.config.jitter {
                self.rng.range_u32(1, self.config.quantum)
            } else {
                self.config.quantum
            };
            for _ in 0..quantum {
                match self.step_thread(tid, listener)? {
                    StepOutcome::Executed => {}
                    StepOutcome::Blocked | StepOutcome::Finished => break,
                }
            }
        }
    }

    fn start_initial_threads<L: ExecutionListener + ?Sized>(&mut self, listener: &mut L) {
        self.threads[0].status = Status::Runnable;
        listener.on_event(Event::ThreadStarted {
            tid: ThreadId::MAIN,
            parent: None,
        });
        if self.start_mode == StartMode::AllStart {
            for i in 1..self.threads.len() {
                self.threads[i].status = Status::Runnable;
                listener.on_event(Event::ThreadStarted {
                    tid: ThreadId::new(i as u32),
                    parent: Some(ThreadId::MAIN),
                });
            }
        }
    }

    fn pick_next_runnable(&mut self) -> Option<ThreadId> {
        let n = self.threads.len();
        for off in 0..n {
            let i = (self.cursor + off) % n;
            if self.threads[i].status == Status::Runnable {
                self.cursor = (i + 1) % n;
                return Some(ThreadId::new(i as u32));
            }
        }
        None
    }

    fn all_started_finished(&self) -> bool {
        self.threads
            .iter()
            .all(|t| matches!(t.status, Status::Finished | Status::NotStarted))
    }

    fn deadlock_error(&self) -> ScheduleError {
        let blocked = self
            .threads
            .iter()
            .enumerate()
            .filter_map(|(i, t)| match t.status {
                Status::Blocked(reason) => Some((ThreadId::new(i as u32), reason)),
                _ => None,
            })
            .collect();
        ScheduleError::Deadlock { blocked }
    }

    fn step_thread<L: ExecutionListener + ?Sized>(
        &mut self,
        tid: ThreadId,
        listener: &mut L,
    ) -> Result<StepOutcome, ScheduleError> {
        // First emit an op whose blocking condition was satisfied while we
        // were off-cpu (lock handoff, semaphore transfer, join target done).
        if let Some(op) = self.threads[tid.index()].pending_emit.take() {
            self.record_op(tid);
            listener.on_event(Event::Op { tid, op });
            return Ok(StepOutcome::Executed);
        }
        let Some(op) = self.threads[tid.index()].stream.next_op() else {
            return self
                .finish_thread(tid, listener)
                .map(|()| StepOutcome::Finished);
        };
        self.execute_op(tid, op, listener)
    }

    fn execute_op<L: ExecutionListener + ?Sized>(
        &mut self,
        tid: ThreadId,
        op: Op,
        listener: &mut L,
    ) -> Result<StepOutcome, ScheduleError> {
        match op {
            Op::Read { .. } | Op::Write { .. } | Op::AtomicRmw { .. } | Op::Compute { .. } => {
                self.record_op(tid);
                listener.on_event(Event::Op { tid, op });
                Ok(StepOutcome::Executed)
            }
            Op::Lock { lock } => self.do_lock(tid, lock, op, listener),
            Op::Unlock { lock } => self.do_unlock(tid, lock, op, listener),
            Op::Barrier {
                barrier,
                participants,
            } => self.do_barrier(tid, barrier, participants, op, listener),
            Op::Fork { child } => self.do_fork(tid, child, op, listener),
            Op::Join { child } => self.do_join(tid, child, op, listener),
            Op::Post { sem } => self.do_post(tid, sem, op, listener),
            Op::WaitSem { sem } => self.do_wait_sem(tid, sem, op, listener),
        }
    }

    fn do_lock<L: ExecutionListener + ?Sized>(
        &mut self,
        tid: ThreadId,
        lock: LockId,
        op: Op,
        listener: &mut L,
    ) -> Result<StepOutcome, ScheduleError> {
        let state = self.locks.entry(lock).or_default();
        match state.holder {
            None => {
                state.holder = Some(tid);
                self.threads[tid.index()].held_locks.push(lock);
                self.record_op(tid);
                listener.on_event(Event::Op { tid, op });
                Ok(StepOutcome::Executed)
            }
            Some(holder) if holder == tid => Err(ScheduleError::RelockHeld { tid, lock }),
            Some(_) => {
                state.waiters.push_back(tid);
                self.threads[tid.index()].status = Status::Blocked(BlockReason::Lock(lock));
                self.stats.blocks += 1;
                Ok(StepOutcome::Blocked)
            }
        }
    }

    fn do_unlock<L: ExecutionListener + ?Sized>(
        &mut self,
        tid: ThreadId,
        lock: LockId,
        op: Op,
        listener: &mut L,
    ) -> Result<StepOutcome, ScheduleError> {
        let state = self.locks.entry(lock).or_default();
        if state.holder != Some(tid) {
            return Err(ScheduleError::UnlockNotHeld { tid, lock });
        }
        self.record_op(tid);
        listener.on_event(Event::Op { tid, op });
        let held = &mut self.threads[tid.index()].held_locks;
        held.retain(|&l| l != lock);
        let state = self.locks.get_mut(&lock).expect("lock state exists");
        if let Some(waiter) = state.waiters.pop_front() {
            // Direct FIFO handoff: the waiter owns the lock immediately;
            // its Lock event is emitted when it is next scheduled.
            state.holder = Some(waiter);
            self.threads[waiter.index()].held_locks.push(lock);
            self.threads[waiter.index()].status = Status::Runnable;
            self.threads[waiter.index()].pending_emit = Some(Op::Lock { lock });
            self.stats.lock_handoffs += 1;
        } else {
            state.holder = None;
        }
        Ok(StepOutcome::Executed)
    }

    fn do_barrier<L: ExecutionListener + ?Sized>(
        &mut self,
        tid: ThreadId,
        barrier: BarrierId,
        participants: u32,
        op: Op,
        listener: &mut L,
    ) -> Result<StepOutcome, ScheduleError> {
        if participants == 0 {
            return Err(ScheduleError::BarrierMismatch {
                barrier,
                expected: 1,
                found: 0,
            });
        }
        let state = self.barriers.entry(barrier).or_default();
        if state.arrived.is_empty() {
            state.expected = participants;
        } else if state.expected != participants {
            return Err(ScheduleError::BarrierMismatch {
                barrier,
                expected: state.expected,
                found: participants,
            });
        }
        if state.arrived.len() as u32 >= state.expected {
            return Err(ScheduleError::BarrierOverflow {
                barrier,
                participants,
            });
        }
        state.arrived.push(tid);
        // The arrival itself is always visible (the detector accumulates
        // clocks as threads arrive).
        self.record_op(tid);
        listener.on_event(Event::Op { tid, op });
        let state = self
            .barriers
            .get_mut(&barrier)
            .expect("barrier state exists");
        if state.arrived.len() as u32 == state.expected {
            let released = std::mem::take(&mut state.arrived);
            self.stats.barrier_episodes += 1;
            for &t in &released {
                self.threads[t.index()].status = Status::Runnable;
            }
            listener.on_event(Event::BarrierReleased {
                barrier,
                participants: &released,
            });
            Ok(StepOutcome::Executed)
        } else {
            self.threads[tid.index()].status = Status::Blocked(BlockReason::Barrier(barrier));
            self.stats.blocks += 1;
            Ok(StepOutcome::Blocked)
        }
    }

    fn do_fork<L: ExecutionListener + ?Sized>(
        &mut self,
        tid: ThreadId,
        child: ThreadId,
        op: Op,
        listener: &mut L,
    ) -> Result<StepOutcome, ScheduleError> {
        if child.index() >= self.threads.len() {
            return Err(ScheduleError::ForkUnknownThread { tid, child });
        }
        if self.threads[child.index()].status != Status::NotStarted {
            return Err(ScheduleError::ForkAlreadyStarted { tid, child });
        }
        self.record_op(tid);
        listener.on_event(Event::Op { tid, op });
        self.threads[child.index()].status = Status::Runnable;
        listener.on_event(Event::ThreadStarted {
            tid: child,
            parent: Some(tid),
        });
        Ok(StepOutcome::Executed)
    }

    fn do_join<L: ExecutionListener + ?Sized>(
        &mut self,
        tid: ThreadId,
        child: ThreadId,
        op: Op,
        listener: &mut L,
    ) -> Result<StepOutcome, ScheduleError> {
        if child == tid || child.index() >= self.threads.len() {
            return Err(ScheduleError::JoinInvalid { tid, child });
        }
        if self.threads[child.index()].status == Status::Finished {
            self.record_op(tid);
            listener.on_event(Event::Op { tid, op });
            Ok(StepOutcome::Executed)
        } else {
            self.join_waiters[child.index()].push(tid);
            self.threads[tid.index()].status = Status::Blocked(BlockReason::Join(child));
            self.threads[tid.index()].pending_emit = Some(op);
            self.stats.blocks += 1;
            Ok(StepOutcome::Blocked)
        }
    }

    fn do_post<L: ExecutionListener + ?Sized>(
        &mut self,
        tid: ThreadId,
        sem: SemId,
        op: Op,
        listener: &mut L,
    ) -> Result<StepOutcome, ScheduleError> {
        self.record_op(tid);
        listener.on_event(Event::Op { tid, op });
        let state = self.sems.entry(sem).or_default();
        if let Some(waiter) = state.waiters.pop_front() {
            // Transfer the post directly to the longest waiter.
            self.threads[waiter.index()].status = Status::Runnable;
            self.threads[waiter.index()].pending_emit = Some(Op::WaitSem { sem });
        } else {
            state.count += 1;
        }
        Ok(StepOutcome::Executed)
    }

    fn do_wait_sem<L: ExecutionListener + ?Sized>(
        &mut self,
        tid: ThreadId,
        sem: SemId,
        op: Op,
        listener: &mut L,
    ) -> Result<StepOutcome, ScheduleError> {
        let state = self.sems.entry(sem).or_default();
        if state.count > 0 {
            state.count -= 1;
            self.record_op(tid);
            listener.on_event(Event::Op { tid, op });
            Ok(StepOutcome::Executed)
        } else {
            state.waiters.push_back(tid);
            self.threads[tid.index()].status = Status::Blocked(BlockReason::Semaphore(sem));
            self.stats.blocks += 1;
            Ok(StepOutcome::Blocked)
        }
    }

    fn finish_thread<L: ExecutionListener + ?Sized>(
        &mut self,
        tid: ThreadId,
        listener: &mut L,
    ) -> Result<(), ScheduleError> {
        let held = std::mem::take(&mut self.threads[tid.index()].held_locks);
        if !held.is_empty() {
            return Err(ScheduleError::FinishedHoldingLocks { tid, locks: held });
        }
        self.threads[tid.index()].status = Status::Finished;
        listener.on_event(Event::ThreadFinished { tid });
        for waiter in std::mem::take(&mut self.join_waiters[tid.index()]) {
            // The waiter's pending Join op is already stored; just wake it.
            self.threads[waiter.index()].status = Status::Runnable;
        }
        Ok(())
    }

    fn record_op(&mut self, tid: ThreadId) {
        self.stats.ops_executed += 1;
        self.stats.per_thread_ops[tid.index()] += 1;
    }
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("threads", &self.threads.len())
            .field("config", &self.config)
            .field("stats", &self.stats)
            .finish()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StepOutcome {
    Executed,
    Blocked,
    Finished,
}

/// Runs `program` with `config`, delivering events to `listener`.
/// Convenience wrapper over [`Scheduler::new`] + [`Scheduler::run`].
///
/// # Errors
///
/// Propagates any [`ScheduleError`] from the run.
pub fn run_program<L: ExecutionListener + ?Sized>(
    program: Program,
    config: SchedulerConfig,
    listener: &mut L,
) -> Result<RunStats, ScheduleError> {
    Scheduler::new(program, config).run(listener)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    fn collect_events(b: ProgramBuilder, config: SchedulerConfig) -> Vec<String> {
        let mut events = Vec::new();
        run_program(b.build(), config, &mut |e: Event<'_>| {
            events.push(match e {
                Event::ThreadStarted { tid, parent } => match parent {
                    Some(p) => format!("start {tid} by {p}"),
                    None => format!("start {tid}"),
                },
                Event::Op { tid, op } => format!("{tid}: {op}"),
                Event::BarrierReleased {
                    barrier,
                    participants,
                } => {
                    format!("released {barrier} x{}", participants.len())
                }
                Event::ThreadFinished { tid } => format!("finish {tid}"),
            });
        })
        .unwrap();
        events
    }

    #[test]
    fn single_thread_executes_in_order() {
        let mut b = ProgramBuilder::new();
        let x = b.alloc_shared(64).base();
        b.on(ThreadId::MAIN).write(x).read(x).compute(10);
        let events = collect_events(b, SchedulerConfig::default());
        assert_eq!(
            events,
            vec![
                "start T0".to_string(),
                format!("T0: write {x}"),
                format!("T0: read {x}"),
                "T0: compute 10".to_string(),
                "finish T0".to_string(),
            ]
        );
    }

    #[test]
    fn fork_starts_child_and_join_blocks() {
        let mut b = ProgramBuilder::new();
        let t1 = b.add_thread();
        b.on(ThreadId::MAIN).fork(t1).join(t1).compute(1);
        b.on(t1).compute(2);
        let events = collect_events(b, SchedulerConfig::default());
        // Main forks, tries to join and blocks; t1 runs and finishes; main's
        // join completes afterwards.
        let join_pos = events.iter().position(|e| e == "T0: join T1").unwrap();
        let finish_pos = events.iter().position(|e| e == "finish T1").unwrap();
        assert!(
            finish_pos < join_pos,
            "join must complete after child finishes: {events:?}"
        );
    }

    #[test]
    fn join_of_already_finished_thread_is_immediate() {
        let mut b = ProgramBuilder::new();
        let t1 = b.add_thread();
        // Give main enough filler that t1 finishes before the join, with
        // quantum 1 forcing alternation.
        b.on(ThreadId::MAIN)
            .fork(t1)
            .compute(1)
            .compute(1)
            .compute(1)
            .join(t1);
        b.on(t1).compute(2);
        let cfg = SchedulerConfig {
            quantum: 1,
            ..SchedulerConfig::default()
        };
        let events = collect_events(b, cfg);
        assert!(events.contains(&"T0: join T1".to_string()));
    }

    #[test]
    fn lock_mutual_exclusion_and_handoff() {
        let mut b = ProgramBuilder::new();
        b.all_start();
        let l = b.new_lock();
        let x = b.alloc_shared(8).base();
        let t1 = b.add_thread();
        b.on(ThreadId::MAIN)
            .lock(l)
            .write(x)
            .compute(1)
            .compute(1)
            .unlock(l);
        b.on(t1).lock(l).write(x).unlock(l);
        let cfg = SchedulerConfig {
            quantum: 1,
            ..SchedulerConfig::default()
        };
        let events = collect_events(b, cfg);
        // T1's lock acquisition must come after T0's unlock.
        let unlock0 = events.iter().position(|e| e == "T0: unlock L0").unwrap();
        let lock1 = events.iter().position(|e| e == "T1: lock L0").unwrap();
        assert!(unlock0 < lock1, "{events:?}");
    }

    #[test]
    fn barrier_releases_all_participants_at_once() {
        let mut b = ProgramBuilder::new();
        b.all_start();
        let bar = b.new_barrier();
        let t1 = b.add_thread();
        let t2 = b.add_thread();
        b.on(ThreadId::MAIN).barrier(bar, 3).compute(1);
        b.on(t1).barrier(bar, 3).compute(1);
        b.on(t2).barrier(bar, 3).compute(1);
        let events = collect_events(b, SchedulerConfig::default());
        let release = events
            .iter()
            .position(|e| e.starts_with("released B0"))
            .unwrap();
        assert_eq!(events[release], "released B0 x3");
        // No compute happens before the release.
        for e in &events[..release] {
            assert!(!e.contains("compute"), "{events:?}");
        }
    }

    #[test]
    fn barrier_is_reusable() {
        let mut b = ProgramBuilder::new();
        b.all_start();
        let bar = b.new_barrier();
        let t1 = b.add_thread();
        b.on(ThreadId::MAIN).barrier(bar, 2).barrier(bar, 2);
        b.on(t1).barrier(bar, 2).barrier(bar, 2);
        let events = collect_events(b, SchedulerConfig::default());
        let releases = events
            .iter()
            .filter(|e| e.starts_with("released B0"))
            .count();
        assert_eq!(releases, 2);
    }

    #[test]
    fn semaphore_post_before_wait() {
        let mut b = ProgramBuilder::new();
        b.all_start();
        let s = b.new_sem();
        let t1 = b.add_thread();
        b.on(ThreadId::MAIN).post(s);
        b.on(t1).wait_sem(s);
        let stats = run_program(b.build(), SchedulerConfig::default(), &mut NullListener).unwrap();
        assert_eq!(stats.ops_executed, 2);
    }

    #[test]
    fn semaphore_wait_blocks_until_post() {
        let mut b = ProgramBuilder::new();
        b.all_start();
        let s = b.new_sem();
        let t1 = b.add_thread();
        b.on(ThreadId::MAIN).compute(1).compute(1).post(s);
        b.on(t1).wait_sem(s).compute(5);
        let cfg = SchedulerConfig {
            quantum: 1,
            ..SchedulerConfig::default()
        };
        let events = collect_events(b, cfg);
        let post = events.iter().position(|e| e == "T0: post S0").unwrap();
        let wait = events.iter().position(|e| e == "T1: wait S0").unwrap();
        assert!(post < wait, "{events:?}");
    }

    #[test]
    fn deadlock_is_reported() {
        let mut b = ProgramBuilder::new();
        b.all_start();
        let s = b.new_sem();
        b.on(ThreadId::MAIN).wait_sem(s);
        let err =
            run_program(b.build(), SchedulerConfig::default(), &mut NullListener).unwrap_err();
        match err {
            ScheduleError::Deadlock { blocked } => {
                assert_eq!(
                    blocked,
                    vec![(ThreadId::MAIN, BlockReason::Semaphore(SemId(0)))]
                );
            }
            other => panic!("expected deadlock, got {other}"),
        }
    }

    #[test]
    fn abba_deadlock_is_reported() {
        let mut b = ProgramBuilder::new();
        b.all_start();
        let la = b.new_lock();
        let lb = b.new_lock();
        let t1 = b.add_thread();
        b.on(ThreadId::MAIN)
            .lock(la)
            .compute(1)
            .lock(lb)
            .unlock(lb)
            .unlock(la);
        b.on(t1).lock(lb).compute(1).lock(la).unlock(la).unlock(lb);
        let cfg = SchedulerConfig {
            quantum: 2,
            ..SchedulerConfig::default()
        };
        let err = run_program(b.build(), cfg, &mut NullListener).unwrap_err();
        assert!(matches!(err, ScheduleError::Deadlock { .. }), "{err}");
    }

    #[test]
    fn unlock_not_held_is_error() {
        let mut b = ProgramBuilder::new();
        let l = b.new_lock();
        b.on(ThreadId::MAIN).unlock(l);
        let err =
            run_program(b.build(), SchedulerConfig::default(), &mut NullListener).unwrap_err();
        assert_eq!(
            err,
            ScheduleError::UnlockNotHeld {
                tid: ThreadId::MAIN,
                lock: l
            }
        );
    }

    #[test]
    fn relock_is_error() {
        let mut b = ProgramBuilder::new();
        let l = b.new_lock();
        b.on(ThreadId::MAIN).lock(l).lock(l);
        let err =
            run_program(b.build(), SchedulerConfig::default(), &mut NullListener).unwrap_err();
        assert_eq!(
            err,
            ScheduleError::RelockHeld {
                tid: ThreadId::MAIN,
                lock: l
            }
        );
    }

    #[test]
    fn finish_holding_lock_is_error() {
        let mut b = ProgramBuilder::new();
        let l = b.new_lock();
        b.on(ThreadId::MAIN).lock(l);
        let err =
            run_program(b.build(), SchedulerConfig::default(), &mut NullListener).unwrap_err();
        assert!(matches!(err, ScheduleError::FinishedHoldingLocks { .. }));
    }

    #[test]
    fn fork_errors() {
        let mut b = ProgramBuilder::new();
        b.on(ThreadId::MAIN).fork(ThreadId::new(9));
        let err =
            run_program(b.build(), SchedulerConfig::default(), &mut NullListener).unwrap_err();
        assert!(matches!(err, ScheduleError::ForkUnknownThread { .. }));

        let mut b = ProgramBuilder::new();
        let t1 = b.add_thread();
        b.on(ThreadId::MAIN).fork(t1).fork(t1);
        b.on(t1).compute(1);
        let err =
            run_program(b.build(), SchedulerConfig::default(), &mut NullListener).unwrap_err();
        assert!(matches!(err, ScheduleError::ForkAlreadyStarted { .. }));
    }

    #[test]
    fn join_self_is_error() {
        let mut b = ProgramBuilder::new();
        b.on(ThreadId::MAIN).join(ThreadId::MAIN);
        let err =
            run_program(b.build(), SchedulerConfig::default(), &mut NullListener).unwrap_err();
        assert!(matches!(err, ScheduleError::JoinInvalid { .. }));
    }

    #[test]
    fn barrier_mismatch_is_error() {
        let mut b = ProgramBuilder::new();
        b.all_start();
        let bar = b.new_barrier();
        let t1 = b.add_thread();
        b.on(ThreadId::MAIN).barrier(bar, 2);
        b.on(t1).barrier(bar, 3);
        let err =
            run_program(b.build(), SchedulerConfig::default(), &mut NullListener).unwrap_err();
        assert!(matches!(err, ScheduleError::BarrierMismatch { .. }));
    }

    #[test]
    fn orphan_threads_are_counted_not_fatal() {
        let mut b = ProgramBuilder::new();
        let _t1 = b.add_thread(); // declared, never forked
        b.on(ThreadId::MAIN).compute(1);
        let stats = run_program(b.build(), SchedulerConfig::default(), &mut NullListener).unwrap();
        assert_eq!(stats.orphan_threads, 1);
    }

    #[test]
    fn deterministic_across_runs_with_same_seed() {
        let build = || {
            let mut b = ProgramBuilder::new();
            b.all_start();
            let l = b.new_lock();
            let x = b.alloc_shared(256);
            let t1 = b.add_thread();
            let t2 = b.add_thread();
            for t in [ThreadId::MAIN, t1, t2] {
                let mut c = b.on(t);
                for i in 0..50 {
                    c = c.read(x.index(i * 8)).compute(1);
                    if i % 10 == 0 {
                        c = c.lock(l).write(x.index(i)).unlock(l);
                    }
                }
            }
            b.build()
        };
        let cfg = SchedulerConfig {
            quantum: 4,
            seed: 123,
            jitter: true,
        };
        let run = |program| {
            let mut trace = Vec::new();
            run_program(program, cfg, &mut |e: Event<'_>| {
                if let Event::Op { tid, op } = e {
                    trace.push((tid, op));
                }
            })
            .unwrap();
            trace
        };
        assert_eq!(run(build()), run(build()));
    }

    #[test]
    fn different_seeds_change_interleaving() {
        let build = || {
            let mut b = ProgramBuilder::new();
            b.all_start();
            let x = b.alloc_shared(8).base();
            let t1 = b.add_thread();
            for t in [ThreadId::MAIN, t1] {
                let mut c = b.on(t);
                for _ in 0..100 {
                    c = c.write(x);
                }
            }
            b.build()
        };
        let trace_for = |seed| {
            let cfg = SchedulerConfig {
                quantum: 8,
                seed,
                jitter: true,
            };
            let mut trace = Vec::new();
            run_program(build(), cfg, &mut |e: Event<'_>| {
                if let Event::Op { tid, .. } = e {
                    trace.push(tid);
                }
            })
            .unwrap();
            trace
        };
        assert_ne!(trace_for(1), trace_for(2));
    }

    #[test]
    fn stats_count_blocks_and_handoffs() {
        let mut b = ProgramBuilder::new();
        b.all_start();
        let l = b.new_lock();
        let t1 = b.add_thread();
        b.on(ThreadId::MAIN)
            .lock(l)
            .compute(1)
            .compute(1)
            .compute(1)
            .unlock(l);
        b.on(t1).lock(l).unlock(l);
        let cfg = SchedulerConfig {
            quantum: 2,
            ..SchedulerConfig::default()
        };
        let stats = run_program(b.build(), cfg, &mut NullListener).unwrap();
        assert!(stats.blocks >= 1);
        assert_eq!(stats.lock_handoffs, 1);
        assert!(stats.context_switches >= 2);
        assert_eq!(stats.per_thread_ops.len(), 2);
        assert_eq!(stats.per_thread_ops.iter().sum::<u64>(), stats.ops_executed);
    }

    #[test]
    #[should_panic(expected = "quantum must be at least 1")]
    fn zero_quantum_panics() {
        let b = ProgramBuilder::new();
        let _ = Scheduler::new(
            b.build(),
            SchedulerConfig {
                quantum: 0,
                ..Default::default()
            },
        );
    }
}

ddrace_json::json_struct!(RunStats {
    ops_executed,
    per_thread_ops,
    blocks,
    context_switches,
    barrier_episodes,
    lock_handoffs,
    orphan_threads,
});
