//! The workspace's deterministic pseudo-random number generator.
//!
//! Every stochastic choice in the simulator — scheduler quantum jitter,
//! workload op-stream generation — flows through [`Prng`], a splitmix64
//! generator. It is seeded explicitly, has no global state, and produces
//! the same stream on every platform, which is what makes whole simulation
//! runs reproducible from a single `u64` seed.

/// A seeded splitmix64 generator.
///
/// # Examples
///
/// ```
/// use ddrace_program::Prng;
/// let mut a = Prng::seed_from_u64(42);
/// let mut b = Prng::seed_from_u64(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// assert!(a.below(10) < 10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Prng {
    state: u64,
}

impl Prng {
    /// Creates a generator from a seed; equal seeds give equal streams.
    pub fn seed_from_u64(seed: u64) -> Prng {
        Prng {
            // Offset so seed 0 does not start at state 0.
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, bound)`. `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "Prng::below(0)");
        // The simulator's bounds are tiny relative to 2^64, so plain
        // modulo bias is far below anything the workloads could observe.
        self.next_u64() % bound
    }

    /// A uniform value in `[lo, hi]` (inclusive).
    pub fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        debug_assert!(lo <= hi, "Prng::range_u32({lo}, {hi})");
        lo + self.below(u64::from(hi - lo) + 1) as u32
    }

    /// A uniform percentage roll in `[0, 100)`.
    pub fn percent(&mut self) -> u8 {
        self.below(100) as u8
    }

    /// True with probability `num / den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_seed_sensitive() {
        let mut a = Prng::seed_from_u64(7);
        let mut b = Prng::seed_from_u64(7);
        let mut c = Prng::seed_from_u64(8);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn bounds_are_respected() {
        let mut rng = Prng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(rng.below(7) < 7);
            let v = rng.range_u32(3, 9);
            assert!((3..=9).contains(&v));
            assert!(rng.percent() < 100);
        }
        assert_eq!(rng.range_u32(5, 5), 5);
    }

    #[test]
    fn outputs_cover_the_range() {
        // Sanity check against a degenerate generator: all residues of a
        // small modulus appear quickly.
        let mut rng = Prng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..256 {
            seen[rng.below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn chance_tracks_its_probability() {
        let mut rng = Prng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.chance(3, 5)).count();
        assert!((5_500..6_500).contains(&hits), "got {hits}/10000");
    }
}
