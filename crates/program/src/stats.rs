//! Program-level statistics collection.
//!
//! [`OpCounts`] tallies operations by kind; [`StatsCollector`] is an
//! [`ExecutionListener`] adapter that counts while forwarding events to an
//! inner listener, so statistics can be layered on any consumer for free.

use crate::op::Op;
use crate::schedule::{Event, ExecutionListener};

/// Tally of executed operations by kind.
///
/// # Examples
///
/// ```
/// use ddrace_program::{OpCounts, Op, Addr};
/// let mut counts = OpCounts::default();
/// counts.record(&Op::Read { addr: Addr(8) });
/// counts.record(&Op::Write { addr: Addr(8) });
/// counts.record(&Op::Read { addr: Addr(16) });
/// assert_eq!(counts.reads, 2);
/// assert_eq!(counts.memory_accesses(), 3);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// Plain loads.
    pub reads: u64,
    /// Plain stores.
    pub writes: u64,
    /// Atomic read-modify-writes.
    pub atomics: u64,
    /// Lock acquisitions.
    pub locks: u64,
    /// Lock releases.
    pub unlocks: u64,
    /// Barrier arrivals.
    pub barriers: u64,
    /// Forks.
    pub forks: u64,
    /// Joins.
    pub joins: u64,
    /// Semaphore posts.
    pub posts: u64,
    /// Semaphore waits.
    pub waits: u64,
    /// Pure-compute operations.
    pub computes: u64,
    /// Total cycles declared by compute operations.
    pub compute_cycles: u64,
}

impl OpCounts {
    /// Records one operation.
    pub fn record(&mut self, op: &Op) {
        match op {
            Op::Read { .. } => self.reads += 1,
            Op::Write { .. } => self.writes += 1,
            Op::AtomicRmw { .. } => self.atomics += 1,
            Op::Lock { .. } => self.locks += 1,
            Op::Unlock { .. } => self.unlocks += 1,
            Op::Barrier { .. } => self.barriers += 1,
            Op::Fork { .. } => self.forks += 1,
            Op::Join { .. } => self.joins += 1,
            Op::Post { .. } => self.posts += 1,
            Op::WaitSem { .. } => self.waits += 1,
            Op::Compute { cycles } => {
                self.computes += 1;
                self.compute_cycles += u64::from(*cycles);
            }
        }
    }

    /// Records a batch of `count` compute operations declaring
    /// `total_cycles` between them — identical to calling
    /// [`OpCounts::record`] once per op, for consumers that replay
    /// compute runs in bulk.
    pub fn record_compute_run(&mut self, count: u64, total_cycles: u64) {
        self.computes += count;
        self.compute_cycles += total_cycles;
    }

    /// Total data memory accesses (reads + writes + atomics).
    pub fn memory_accesses(&self) -> u64 {
        self.reads + self.writes + self.atomics
    }

    /// Total synchronization operations.
    pub fn sync_ops(&self) -> u64 {
        self.atomics
            + self.locks
            + self.unlocks
            + self.barriers
            + self.forks
            + self.joins
            + self.posts
            + self.waits
    }

    /// Total operations of any kind.
    pub fn total(&self) -> u64 {
        self.memory_accesses()
            + self.locks
            + self.unlocks
            + self.barriers
            + self.forks
            + self.joins
            + self.posts
            + self.waits
            + self.computes
    }
}

/// Listener adapter: counts operations while forwarding every event to an
/// inner listener.
///
/// # Examples
///
/// ```
/// use ddrace_program::{ProgramBuilder, SchedulerConfig, StatsCollector, NullListener,
///                      run_program, ThreadId};
/// let mut b = ProgramBuilder::new();
/// let x = b.alloc_shared(8).base();
/// b.on(ThreadId::MAIN).write(x).read(x);
/// let mut collector = StatsCollector::new(NullListener);
/// run_program(b.build(), SchedulerConfig::default(), &mut collector).unwrap();
/// assert_eq!(collector.counts().reads, 1);
/// assert_eq!(collector.counts().writes, 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct StatsCollector<L> {
    inner: L,
    counts: OpCounts,
}

impl<L: ExecutionListener> StatsCollector<L> {
    /// Wraps `inner`, forwarding all events to it.
    pub fn new(inner: L) -> Self {
        StatsCollector {
            inner,
            counts: OpCounts::default(),
        }
    }

    /// The counts accumulated so far.
    pub fn counts(&self) -> &OpCounts {
        &self.counts
    }

    /// Consumes the collector, returning the inner listener and the counts.
    pub fn into_inner(self) -> (L, OpCounts) {
        (self.inner, self.counts)
    }
}

impl<L: ExecutionListener> ExecutionListener for StatsCollector<L> {
    fn on_event(&mut self, event: Event<'_>) {
        if let Event::Op { ref op, .. } = event {
            self.counts.record(op);
        }
        self.inner.on_event(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::op::{Addr, ThreadId};
    use crate::schedule::{run_program, NullListener, SchedulerConfig};

    #[test]
    fn op_counts_cover_all_kinds() {
        let mut b = ProgramBuilder::new();
        let x = b.alloc_shared(64).base();
        let l = b.new_lock();
        let bar = b.new_barrier();
        let s = b.new_sem();
        let t1 = b.add_thread();
        b.on(ThreadId::MAIN)
            .fork(t1)
            .write(x)
            .read(x)
            .atomic_rmw(x)
            .lock(l)
            .unlock(l)
            .post(s)
            .barrier(bar, 2)
            .compute(7)
            .join(t1);
        b.on(t1).wait_sem(s).barrier(bar, 2);
        let mut c = StatsCollector::new(NullListener);
        run_program(b.build(), SchedulerConfig::default(), &mut c).unwrap();
        let counts = *c.counts();
        assert_eq!(counts.reads, 1);
        assert_eq!(counts.writes, 1);
        assert_eq!(counts.atomics, 1);
        assert_eq!(counts.locks, 1);
        assert_eq!(counts.unlocks, 1);
        assert_eq!(counts.barriers, 2);
        assert_eq!(counts.forks, 1);
        assert_eq!(counts.joins, 1);
        assert_eq!(counts.posts, 1);
        assert_eq!(counts.waits, 1);
        assert_eq!(counts.computes, 1);
        assert_eq!(counts.compute_cycles, 7);
        assert_eq!(counts.memory_accesses(), 3);
        assert_eq!(counts.sync_ops(), 9);
        assert_eq!(counts.total(), 12);
    }

    #[test]
    fn totals_are_consistent() {
        let mut counts = OpCounts::default();
        counts.record(&Op::Read { addr: Addr(0) });
        counts.record(&Op::Compute { cycles: 3 });
        counts.record(&Op::Compute { cycles: 4 });
        assert_eq!(counts.total(), 3);
        assert_eq!(counts.compute_cycles, 7);
        assert_eq!(counts.sync_ops(), 0);
    }

    #[test]
    fn into_inner_returns_counts() {
        let c = StatsCollector::new(NullListener);
        let (_inner, counts) = c.into_inner();
        assert_eq!(counts, OpCounts::default());
    }
}

ddrace_json::json_struct!(OpCounts {
    reads,
    writes,
    atomics,
    locks,
    unlocks,
    barriers,
    forks,
    joins,
    posts,
    waits,
    computes,
    compute_cycles,
});
