//! Deterministic multithreaded program model for the ddrace simulator.
//!
//! This crate is the foundation of the [ddrace] reproduction of
//! *"Demand-driven software race detection using hardware performance
//! counters"* (Greathouse et al., ISCA 2011): it defines what a simulated
//! parallel **program** is and how it **executes**.
//!
//! A program is a set of per-thread [`OpStream`]s — lazy sequences of
//! [`Op`]s (loads, stores, atomics, locks, barriers, fork/join,
//! semaphores, pure compute). The [`Scheduler`] interleaves the threads
//! deterministically (seeded, quantum-based, optionally jittered), enforces
//! blocking semantics, and delivers every executed operation to an
//! [`ExecutionListener`] in one global order. Higher layers — the cache
//! simulator, the PMU model, and the race detector — are all listeners over
//! this stream.
//!
//! # Example
//!
//! Build and run a tiny two-thread program:
//!
//! ```
//! use ddrace_program::{Event, ProgramBuilder, SchedulerConfig, ThreadId, run_program};
//!
//! let mut b = ProgramBuilder::new();
//! let x = b.alloc_shared(8).base();
//! let worker = b.add_thread();
//! b.on(ThreadId::MAIN).fork(worker).write(x).join(worker);
//! b.on(worker).read(x);
//!
//! let mut n = 0;
//! let stats = run_program(b.build(), SchedulerConfig::default(), &mut |e: Event<'_>| {
//!     if matches!(e, Event::Op { .. }) { n += 1; }
//! })?;
//! assert_eq!(n, 4);
//! assert_eq!(stats.ops_executed, 4);
//! # Ok::<(), ddrace_program::ScheduleError>(())
//! ```
//!
//! [ddrace]: https://github.com/ddrace/ddrace

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod address;
mod builder;
mod error;
mod op;
mod program;
mod rng;
mod runqueue;
mod schedule;
mod stats;
mod trace;

pub use address::{AddressSpace, Region, DEFAULT_LINE_SIZE};
pub use builder::{ProgramBuilder, ThreadCursor};
pub use error::{BlockReason, ScheduleError};
pub use op::{AccessKind, Addr, BarrierId, LockId, Op, SemId, ThreadId};
pub use program::{OpStream, Program, StartMode};
pub use rng::Prng;
pub use runqueue::RunQueue;
pub use schedule::{
    run_program, Event, ExecutionListener, NullListener, PickStrategy, RunStats, Scheduler,
    SchedulerConfig,
};
pub use stats::{OpCounts, StatsCollector};
pub use trace::{Trace, TraceEvent, TraceRecorder};
