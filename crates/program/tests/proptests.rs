//! Property-based tests for the program model and scheduler.

use ddrace_program::{
    run_program, Addr, Event, LockId, Op, Program, ProgramBuilder, SchedulerConfig, StartMode,
    ThreadId,
};
use proptest::prelude::*;

/// Generates a structurally valid random program: every lock is acquired
/// and released in a balanced, properly nested way per thread, so the only
/// legal outcome is a clean run.
fn arb_program(max_threads: usize, ops_per_thread: usize) -> impl Strategy<Value = Vec<Vec<Op>>> {
    let thread = proptest::collection::vec(
        prop_oneof![
            (0u64..512).prop_map(|a| Op::Read {
                addr: Addr(0x1000 + a * 8)
            }),
            (0u64..512).prop_map(|a| Op::Write {
                addr: Addr(0x1000 + a * 8)
            }),
            (0u64..64).prop_map(|a| Op::AtomicRmw {
                addr: Addr(0x1000 + a * 8)
            }),
            (1u32..20).prop_map(|c| Op::Compute { cycles: c }),
            // A balanced critical section is inserted as three ops below.
            (0u32..4).prop_map(|l| Op::Lock { lock: LockId(l) }),
        ],
        1..ops_per_thread,
    )
    .prop_map(|ops| {
        // Rewrite: every Lock becomes Lock, Write(shared), Unlock so locks
        // are always balanced and never nested.
        let mut body = Vec::new();
        for op in ops {
            match op {
                Op::Lock { lock } => {
                    body.push(Op::Lock { lock });
                    body.push(Op::Write {
                        addr: Addr(0x9000 + u64::from(lock.0) * 8),
                    });
                    body.push(Op::Unlock { lock });
                }
                other => body.push(other),
            }
        }
        body
    });
    proptest::collection::vec(thread, 1..=max_threads)
}

fn trace_of(threads: Vec<Vec<Op>>, cfg: SchedulerConfig) -> Vec<(ThreadId, Op)> {
    let program = Program::from_thread_vecs(threads, StartMode::AllStart);
    let mut trace = Vec::new();
    run_program(program, cfg, &mut |e: Event<'_>| {
        if let Event::Op { tid, op } = e {
            trace.push((tid, op));
        }
    })
    .expect("balanced program must run cleanly");
    trace
}

proptest! {
    /// The same program and seed always produce the same interleaving.
    #[test]
    fn scheduler_is_deterministic(
        threads in arb_program(4, 40),
        seed in any::<u64>(),
        quantum in 1u32..16,
    ) {
        let cfg = SchedulerConfig { quantum, seed, jitter: true };
        prop_assert_eq!(trace_of(threads.clone(), cfg), trace_of(threads, cfg));
    }

    /// Every operation of every thread executes exactly once, in program
    /// order per thread, regardless of the interleaving.
    #[test]
    fn all_ops_execute_in_program_order(
        threads in arb_program(4, 40),
        seed in any::<u64>(),
    ) {
        let cfg = SchedulerConfig { quantum: 3, seed, jitter: true };
        let trace = trace_of(threads.clone(), cfg);
        for (i, body) in threads.iter().enumerate() {
            let tid = ThreadId::new(i as u32);
            let executed: Vec<Op> = trace
                .iter()
                .filter(|(t, _)| *t == tid)
                .map(|(_, op)| *op)
                .collect();
            prop_assert_eq!(&executed, body);
        }
    }

    /// Critical sections on the same lock never interleave: between a
    /// thread's Lock and Unlock, no other thread executes an op on that
    /// lock.
    #[test]
    fn critical_sections_are_mutually_exclusive(
        threads in arb_program(4, 30),
        seed in any::<u64>(),
    ) {
        let cfg = SchedulerConfig { quantum: 2, seed, jitter: true };
        let trace = trace_of(threads, cfg);
        let mut holder: std::collections::HashMap<LockId, ThreadId> = Default::default();
        for (tid, op) in trace {
            match op {
                Op::Lock { lock } => {
                    prop_assert!(!holder.contains_key(&lock),
                        "lock {lock} acquired while held");
                    holder.insert(lock, tid);
                }
                Op::Unlock { lock } => {
                    prop_assert_eq!(holder.remove(&lock), Some(tid));
                }
                _ => {}
            }
        }
        prop_assert!(holder.is_empty(), "all locks released at exit");
    }

    /// Scheduler stats agree with the observed trace length.
    #[test]
    fn stats_match_trace(threads in arb_program(3, 25), seed in any::<u64>()) {
        let cfg = SchedulerConfig { quantum: 5, seed, jitter: true };
        let program = Program::from_thread_vecs(threads, StartMode::AllStart);
        let mut n = 0u64;
        let stats = run_program(program, cfg, &mut |e: Event<'_>| {
            if matches!(e, Event::Op { .. }) { n += 1; }
        }).unwrap();
        prop_assert_eq!(stats.ops_executed, n);
        prop_assert_eq!(stats.per_thread_ops.iter().sum::<u64>(), n);
    }
}

// A builder-constructed fork/join program exercises ForkExplicit mode
// under arbitrary seeds without deadlocking.
proptest! {
    #[test]
    fn fork_join_programs_complete(seed in any::<u64>(), workers in 1u32..6) {
        let mut b = ProgramBuilder::new();
        let shared = b.alloc_shared(4096);
        let mut tids = Vec::new();
        for _ in 0..workers {
            tids.push(b.add_thread());
        }
        let mut main = b.on(ThreadId::MAIN);
        for &t in &tids {
            main = main.fork(t);
        }
        for &t in &tids {
            main = main.join(t);
        }
        main.read(shared.index(0));
        for (i, &t) in tids.iter().enumerate() {
            b.on(t).write(shared.index(i as u64 * 8)).compute(3);
        }
        let cfg = SchedulerConfig { quantum: 2, seed, jitter: true };
        let stats = run_program(b.build(), cfg, &mut ddrace_program::NullListener).unwrap();
        prop_assert_eq!(stats.orphan_threads, 0);
        prop_assert_eq!(stats.ops_executed, u64::from(workers) * 4 + 1);
    }
}
