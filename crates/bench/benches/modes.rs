//! Criterion benches: end-to-end simulation wall-clock per analysis mode.
//!
//! The simulated-cycle speedups (F4/F5) have a host-time counterpart:
//! demand-driven runs are genuinely cheaper for *us* too, because skipped
//! analysis skips detector work. These benches measure that on one
//! low-sharing and one high-sharing benchmark.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ddrace_core::{AnalysisMode, SimConfig, Simulation};
use ddrace_workloads::{parsec, phoenix, Scale, WorkloadSpec};

fn run(spec: &WorkloadSpec, mode: AnalysisMode) -> u64 {
    let mut cfg = SimConfig::new(8, mode);
    cfg.scheduler.seed = 42;
    Simulation::new(cfg)
        .run(spec.program(Scale::TEST, 42))
        .expect("benchmark runs")
        .makespan
}

fn bench_modes(c: &mut Criterion) {
    let specs = [phoenix::linear_regression(), parsec::canneal()];
    let modes = [
        ("native", AnalysisMode::Native),
        ("continuous", AnalysisMode::Continuous),
        ("demand-hitm", AnalysisMode::demand_hitm()),
        ("demand-oracle", AnalysisMode::demand_oracle()),
    ];
    let mut group = c.benchmark_group("simulation_modes");
    group.sample_size(10);
    for spec in &specs {
        for (label, mode) in modes {
            group.bench_with_input(
                BenchmarkId::new(spec.name.clone(), label),
                &mode,
                |b, &m| b.iter(|| run(spec, m)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_modes);
criterion_main!(benches);
