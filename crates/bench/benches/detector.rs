//! Criterion benches: raw race-detector throughput (host wall-clock).
//!
//! Complements experiment A1's simulated-cycle view with real machine
//! time: FastTrack's epoch fast path versus Djit's full vector clocks
//! versus the lockset baseline, on synthetic access patterns isolating
//! each regime (private, read-shared, lock-protected).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ddrace_detector::{DetectorConfig, Djit, FastTrack, LockSet, RaceDetector};
use ddrace_program::{AccessKind, Addr, LockId, Op, ThreadId};

const OPS: u64 = 50_000;

fn make<D: RaceDetector>(mut d: D, threads: u32) -> D {
    d.on_thread_start(ThreadId(0), None);
    for t in 1..threads {
        d.on_thread_start(ThreadId(t), Some(ThreadId(0)));
    }
    d
}

/// Each thread re-reads and re-writes its own words: the same-epoch fast
/// path regime that dominates real programs.
fn drive_private<D: RaceDetector>(d: &mut D) {
    for i in 0..OPS {
        let t = ThreadId((i % 4) as u32);
        let addr = Addr(0x1_0000 + (i % 4) * 0x1000 + (i % 64) * 8);
        let kind = if i % 4 == 0 {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        d.on_access(t, addr, kind);
    }
}

/// All threads read a common region: the shared-read (vector-clock
/// escalation) regime.
fn drive_read_shared<D: RaceDetector>(d: &mut D) {
    for i in 0..OPS {
        let t = ThreadId((i % 4) as u32);
        d.on_access(t, Addr(0x1_0000 + (i % 256) * 8), AccessKind::Read);
    }
}

/// Lock-protected round-robin updates: the sync-heavy regime.
fn drive_locked<D: RaceDetector>(d: &mut D) {
    for i in 0..OPS / 4 {
        let t = ThreadId((i % 4) as u32);
        let lock = LockId((i % 8) as u32);
        let addr = Addr(0x1_0000 + (i % 64) * 8);
        d.on_sync(t, &Op::Lock { lock });
        d.on_access(t, addr, AccessKind::Read);
        d.on_access(t, addr, AccessKind::Write);
        d.on_sync(t, &Op::Unlock { lock });
    }
}

fn drive<D: RaceDetector>(d: &mut D, regime: &str) -> u64 {
    match regime {
        "private" => drive_private(d),
        "read_shared" => drive_read_shared(d),
        _ => drive_locked(d),
    }
    d.stats().accesses_checked
}

fn bench_detectors(c: &mut Criterion) {
    let mut group = c.benchmark_group("detector_throughput");
    group.throughput(Throughput::Elements(OPS));
    for regime in ["private", "read_shared", "locked"] {
        group.bench_with_input(BenchmarkId::new("fasttrack", regime), regime, |b, r| {
            b.iter(|| drive(&mut make(FastTrack::new(DetectorConfig::default()), 4), r))
        });
        group.bench_with_input(BenchmarkId::new("djit", regime), regime, |b, r| {
            b.iter(|| drive(&mut make(Djit::new(DetectorConfig::default()), 4), r))
        });
        group.bench_with_input(BenchmarkId::new("lockset", regime), regime, |b, r| {
            b.iter(|| drive(&mut make(LockSet::new(DetectorConfig::default()), 4), r))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_detectors);
criterion_main!(benches);
