//! Criterion benches: substrate throughput (scheduler, cache hierarchy,
//! PMU) in isolation — the costs everything else is built on.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ddrace_cache::{CacheConfig, CacheHierarchy, CoreId};
use ddrace_pmu::{CounterConfig, Pmu, PmuEventKind};
use ddrace_program::{
    run_program, AccessKind, Addr, NullListener, Program, SchedulerConfig, StartMode,
};

fn bench_scheduler(c: &mut Criterion) {
    let ops_per_thread = 20_000u64;
    let mut group = c.benchmark_group("scheduler");
    group.throughput(Throughput::Elements(ops_per_thread * 4));
    group.bench_function("interleave_4_threads", |b| {
        b.iter(|| {
            let threads: Vec<Vec<ddrace_program::Op>> = (0..4u64)
                .map(|t| {
                    (0..ops_per_thread)
                        .map(|i| ddrace_program::Op::Read {
                            addr: Addr(0x1000 + t * 0x10000 + (i % 512) * 8),
                        })
                        .collect()
                })
                .collect();
            let program = Program::from_thread_vecs(threads, StartMode::AllStart);
            run_program(program, SchedulerConfig::jittered(7), &mut NullListener).unwrap()
        })
    });
    group.finish();
}

fn bench_cache(c: &mut Criterion) {
    let accesses = 100_000u64;
    let mut group = c.benchmark_group("cache");
    group.throughput(Throughput::Elements(accesses));
    group.bench_function("private_streams", |b| {
        b.iter(|| {
            let mut m = CacheHierarchy::new(CacheConfig::nehalem(4));
            for i in 0..accesses {
                let core = CoreId((i % 4) as u32);
                m.access(
                    core,
                    Addr(0x10_0000 + u64::from(core.0) * 0x10_0000 + (i % 4096) * 8),
                    if i % 3 == 0 {
                        AccessKind::Write
                    } else {
                        AccessKind::Read
                    },
                );
            }
            m.stats().total_accesses()
        })
    });
    group.bench_function("hitm_ping_pong", |b| {
        b.iter(|| {
            let mut m = CacheHierarchy::new(CacheConfig::nehalem(2));
            for i in 0..accesses {
                let core = CoreId((i % 2) as u32);
                m.access(
                    core,
                    Addr(0x10_0000 + (i % 16) * 64),
                    if i % 2 == 0 {
                        AccessKind::Write
                    } else {
                        AccessKind::Read
                    },
                );
            }
            m.stats().total_hitm_loads()
        })
    });
    group.finish();
}

fn bench_pmu(c: &mut Criterion) {
    let events = 100_000u64;
    let mut group = c.benchmark_group("pmu");
    group.throughput(Throughput::Elements(events));
    group.bench_function("sampling_counter", |b| {
        let mut mem = CacheHierarchy::new(CacheConfig::nehalem(2));
        mem.access(CoreId(0), Addr(0x40), AccessKind::Write);
        let hitm = mem.access(CoreId(1), Addr(0x40), AccessKind::Read);
        b.iter(|| {
            let mut pmu = Pmu::new(
                2,
                vec![CounterConfig::sampling(PmuEventKind::HitmLoad, 100, 20)],
            );
            let mut delivered = 0u64;
            for _ in 0..events {
                delivered += pmu.on_access(CoreId(1), &hitm, AccessKind::Read).len() as u64;
            }
            delivered
        })
    });
    group.finish();
}

criterion_group!(benches, bench_scheduler, bench_cache, bench_pmu);
criterion_main!(benches);
