//! Experiment harness for the ddrace paper reproduction.
//!
//! One binary per table/figure (see `DESIGN.md` for the experiment
//! index); this library holds what they share: an environment-driven
//! [`ExpContext`], mode runners built on the [`ddrace_harness`] campaign
//! executor (each simulated run is single-threaded and deterministic, so
//! the harness parallelizes *across* jobs), plain-text table printing,
//! and JSON result dumps under `results/`.
//!
//! Environment knobs:
//!
//! * `DDRACE_SCALE` — `test`, `small` (default), or `large`; anything
//!   else is an error (exit 2), never a silent fallback;
//! * `DDRACE_SEED` — base RNG seed (default 42);
//! * `DDRACE_SEEDS` — comma-separated seed axis for campaign-backed
//!   experiments (default: just `DDRACE_SEED`);
//! * `DDRACE_CORES` — simulated cores (default 8);
//! * `DDRACE_WORKERS` — host worker threads (default: all cores);
//! * `DDRACE_EVENTS` — JSONL event-stream path for campaign-backed
//!   experiments (doubles as a resume checkpoint);
//! * `DDRACE_RESUME` — a prior `DDRACE_EVENTS` stream to restore
//!   finished jobs from;
//! * `DDRACE_RESULTS_DIR` — where JSON dumps go (default `results/`).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

use ddrace_core::{AnalysisMode, RunResult, SimConfig, Simulation};
use ddrace_harness::{
    resume_campaign, run_campaign, Campaign, CampaignReport, EventSink, ResumeLog,
};
use ddrace_json::ToJson;
use ddrace_program::SchedulerConfig;
use ddrace_workloads::{Scale, WorkloadSpec};
use std::io::Write as _;
use std::path::PathBuf;

pub use ddrace_harness::SuiteRow as ModeRow;

/// Shared experiment configuration, read from the environment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpContext {
    /// Workload scale.
    pub scale: Scale,
    /// Base seed; workload generation and the scheduler derive from it.
    pub seed: u64,
    /// Simulated core count.
    pub cores: usize,
}

impl ExpContext {
    /// Reads the context from `DDRACE_*` environment variables.
    ///
    /// An unrecognized `DDRACE_SCALE` value terminates the process with
    /// exit code 2: a typo like `DDRACE_SCALE=Large` used to silently run
    /// at SMALL, wasting the whole (possibly hours-long) experiment.
    pub fn from_env() -> Self {
        let scale = match std::env::var("DDRACE_SCALE") {
            Ok(name) => parse_scale_name(&name).unwrap_or_else(|e| {
                eprintln!("error: {e}");
                std::process::exit(2);
            }),
            Err(_) => Scale::SMALL,
        };
        let seed = std::env::var("DDRACE_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(42);
        let cores = std::env::var("DDRACE_CORES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(8);
        ExpContext { scale, seed, cores }
    }

    /// The scheduler configuration every experiment uses: jittered with
    /// the context seed, so interleavings vary by seed but are
    /// reproducible.
    pub fn scheduler(&self) -> SchedulerConfig {
        SchedulerConfig {
            quantum: 32,
            seed: self.seed,
            jitter: true,
        }
    }

    /// A simulation config for `mode` under this context.
    pub fn sim_config(&self, mode: AnalysisMode) -> SimConfig {
        let mut cfg = SimConfig::new(self.cores, mode);
        cfg.scheduler = self.scheduler();
        cfg
    }
}

impl Default for ExpContext {
    fn default() -> Self {
        ExpContext {
            scale: Scale::SMALL,
            seed: 42,
            cores: 8,
        }
    }
}

/// Runs one workload under one mode.
///
/// # Panics
///
/// Panics if the workload program is ill-formed (a bug in the generator,
/// not in user input).
pub fn run_one(ctx: &ExpContext, spec: &WorkloadSpec, mode: AnalysisMode) -> RunResult {
    run_one_with(ctx, spec, ctx.sim_config(mode))
}

/// Runs one workload under an explicit simulation config (for sweeps that
/// vary more than the mode).
///
/// # Panics
///
/// Panics if the workload program is ill-formed.
pub fn run_one_with(ctx: &ExpContext, spec: &WorkloadSpec, config: SimConfig) -> RunResult {
    let program = spec.program(ctx.scale, ctx.seed);
    Simulation::new(config)
        .run(program)
        .unwrap_or_else(|e| panic!("workload {} failed to schedule: {e}", spec.name))
}

/// Parses a scale preset name as used by `DDRACE_SCALE` and the CLI:
/// `test`, `small`, or `large`.
///
/// # Errors
///
/// Returns a message naming the bad value and the accepted names.
pub fn parse_scale_name(name: &str) -> Result<Scale, String> {
    match name {
        "test" => Ok(Scale::TEST),
        "small" => Ok(Scale::SMALL),
        "large" => Ok(Scale::LARGE),
        other => Err(format!(
            "unknown scale `{other}` (expected test, small, or large)"
        )),
    }
}

/// The preset name of a scale (inverse of [`parse_scale_name`]); ad-hoc
/// ratios print as `num/den`.
pub fn scale_label(scale: Scale) -> String {
    if scale == Scale::TEST {
        "test".to_string()
    } else if scale == Scale::SMALL {
        "small".to_string()
    } else if scale == Scale::LARGE {
        "large".to_string()
    } else {
        format!("{}/{}", scale.num, scale.den)
    }
}

/// Caps `scale` at `cap` (comparing the scaling ratios). Returns the
/// effective scale and whether a remap happened — callers must announce
/// the remap instead of silently downgrading the run.
pub fn cap_scale(scale: Scale, cap: Scale) -> (Scale, bool) {
    if scale.num * cap.den > cap.num * scale.den {
        (cap, true)
    } else {
        (scale, false)
    }
}

/// The experiment seed axis: `DDRACE_SEEDS` as a comma-separated list,
/// or just `base` (the `DDRACE_SEED` value) when unset. A malformed
/// list terminates the process with exit code 2 rather than silently
/// running a different sweep than asked for.
pub fn seeds_from_env(base: u64) -> Vec<u64> {
    match std::env::var("DDRACE_SEEDS") {
        Ok(list) => {
            let seeds: Result<Vec<u64>, _> = list.split(',').map(|s| s.trim().parse()).collect();
            match seeds {
                Ok(seeds) if !seeds.is_empty() => seeds,
                _ => {
                    eprintln!(
                        "error: DDRACE_SEEDS takes comma-separated numbers, e.g. 1,2,3 \
                         (got `{list}`)"
                    );
                    std::process::exit(2);
                }
            }
        }
        Err(_) => vec![base],
    }
}

/// Runs an experiment campaign with the shared environment plumbing:
/// host workers from `DDRACE_WORKERS`, a JSONL event stream to
/// `DDRACE_EVENTS` (making the run checkpointable), and resume from a
/// prior stream named by `DDRACE_RESUME`.
///
/// The resume log is read *before* the events path is opened, so
/// resuming a run into the same path it came from does not truncate
/// the checkpoint being replayed.
///
/// # Panics
///
/// Panics if any job fails — experiment workloads are expected to be
/// well-formed. Bad resume/events paths terminate with exit code 2.
pub fn run_exp_campaign(campaign: &Campaign) -> CampaignReport {
    let resume_log = std::env::var("DDRACE_RESUME").ok().map(|path| {
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("error: DDRACE_RESUME {path}: {e}");
            std::process::exit(2);
        });
        ResumeLog::parse(&text).unwrap_or_else(|e| {
            eprintln!("error: DDRACE_RESUME {path}: {e}");
            std::process::exit(2);
        })
    });
    let jsonl: Option<Box<dyn std::io::Write + Send>> =
        std::env::var("DDRACE_EVENTS")
            .ok()
            .map(|path| -> Box<dyn std::io::Write + Send> {
                Box::new(std::fs::File::create(&path).unwrap_or_else(|e| {
                    eprintln!("error: DDRACE_EVENTS {path}: {e}");
                    std::process::exit(2);
                }))
            });
    let sink = EventSink::new(jsonl, false);
    let report = match &resume_log {
        Some(log) => resume_campaign(campaign, host_workers(), &sink, log).unwrap_or_else(|e| {
            eprintln!("error: DDRACE_RESUME does not match this campaign: {e}");
            std::process::exit(2);
        }),
        None => run_campaign(campaign, host_workers(), &sink),
    };
    for record in &report.records {
        if let Err(reason) = &record.outcome {
            panic!("job {} failed: {reason}", record.label);
        }
    }
    report
}

/// Host worker-thread count for campaign execution: `DDRACE_WORKERS`, or
/// every available core.
pub fn host_workers() -> usize {
    std::env::var("DDRACE_WORKERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        })
}

/// Builds the [`Campaign`] that [`run_matrix`] executes: every workload
/// under every mode at the context's scale, seed, and core count.
pub fn matrix_campaign(
    ctx: &ExpContext,
    name: &str,
    specs: &[WorkloadSpec],
    modes: &[AnalysisMode],
) -> Campaign {
    matrix_campaign_seeded(ctx, name, specs, modes, &[ctx.seed])
}

/// Like [`matrix_campaign`], with an explicit seed axis: the cross
/// product workload × mode × seed, seed innermost. Both workload
/// generation and the interleaving scheduler derive from the job's seed.
pub fn matrix_campaign_seeded(
    ctx: &ExpContext,
    name: &str,
    specs: &[WorkloadSpec],
    modes: &[AnalysisMode],
    seeds: &[u64],
) -> Campaign {
    Campaign::builder(name)
        .workloads(specs.iter().cloned())
        .modes(modes.iter().copied())
        .seeds(seeds.iter().copied())
        .scale(ctx.scale)
        .cores(ctx.cores)
        .build()
}

/// Runs every workload under every mode on the campaign harness's worker
/// pool. Results keep the input order.
///
/// # Panics
///
/// Panics if any job fails — experiment workloads are expected to be
/// well-formed, so a failure is a generator or simulator bug.
pub fn run_matrix(
    ctx: &ExpContext,
    specs: &[WorkloadSpec],
    modes: &[AnalysisMode],
) -> Vec<ModeRow> {
    run_matrix_seeded(ctx, specs, modes, &[ctx.seed])
}

/// Runs the full workload × mode × seed cross product on the campaign
/// harness. Rows keep workload order; within a row, runs are mode-major
/// with the seed axis innermost (`runs[m * seeds.len() + s]`), and
/// multi-seed sweeps carry per-mode mean/min/max fold-downs in
/// [`SuiteRow::seed_stats`](ddrace_harness::SuiteRow).
///
/// # Panics
///
/// Panics if any job fails — experiment workloads are expected to be
/// well-formed, so a failure is a generator or simulator bug.
pub fn run_matrix_seeded(
    ctx: &ExpContext,
    specs: &[WorkloadSpec],
    modes: &[AnalysisMode],
    seeds: &[u64],
) -> Vec<ModeRow> {
    let campaign = matrix_campaign_seeded(ctx, "matrix", specs, modes, seeds);
    let report = run_campaign(&campaign, host_workers(), &EventSink::null());
    for record in &report.records {
        if let Err(reason) = &record.outcome {
            panic!("workload {} failed: {reason}", record.label);
        }
    }
    report.rows()
}

/// Prints a fixed-width table: a header row then data rows.
///
/// # Panics
///
/// Panics if a row's length differs from the header's.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), headers.len(), "row width mismatch");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let print_row = |cells: &[String]| {
        let line: Vec<String> = cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect();
        println!("{}", line.join("  "));
    };
    print_row(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
    println!("{}", "-".repeat(total));
    for row in rows {
        print_row(row);
    }
}

/// Serializes `value` to `results/<name>.json` (directory from
/// `DDRACE_RESULTS_DIR`), creating the directory if needed. Prints the
/// path written. Failures are reported but not fatal — the printed table
/// is the primary output.
pub fn save_json<T: ToJson>(name: &str, value: &T) {
    let dir = std::env::var("DDRACE_RESULTS_DIR").unwrap_or_else(|_| "results".to_string());
    let dir = PathBuf::from(dir);
    let write = || -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{name}.json"));
        let mut f = std::fs::File::create(&path)?;
        let json = ddrace_json::to_string_pretty(value).map_err(std::io::Error::other)?;
        f.write_all(json.as_bytes())?;
        Ok(path)
    };
    match write() {
        Ok(path) => println!("\n[saved {}]", path.display()),
        Err(e) => eprintln!("warning: could not save {name}.json: {e}"),
    }
}

/// Formats a ratio like `12.3x`.
pub fn ratio(v: f64) -> String {
    format!("{v:.1}x")
}

/// Formats a fraction as a percentage like `12.3%`.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddrace_workloads::racy;

    #[test]
    fn context_defaults() {
        let ctx = ExpContext::default();
        assert_eq!(ctx.cores, 8);
        assert_eq!(ctx.scale, Scale::SMALL);
        assert!(ctx.scheduler().jitter);
    }

    #[test]
    fn run_matrix_preserves_order_and_modes() {
        let ctx = ExpContext {
            scale: Scale::TEST,
            seed: 1,
            cores: 4,
        };
        let specs = racy::kernels();
        let modes = [AnalysisMode::Native, AnalysisMode::Continuous];
        let rows = run_matrix(&ctx, &specs, &modes);
        assert_eq!(rows.len(), specs.len());
        for (row, spec) in rows.iter().zip(&specs) {
            assert_eq!(row.name, spec.name);
            assert_eq!(row.runs.len(), 2);
            assert_eq!(row.runs[0].mode, "native");
            assert_eq!(row.runs[1].mode, "continuous");
            // Same program, same schedule: identical op counts.
            assert_eq!(row.runs[0].ops, row.runs[1].ops);
        }
    }

    #[test]
    fn run_matrix_seeded_is_mode_major_seed_innermost() {
        let ctx = ExpContext {
            scale: Scale::TEST,
            seed: 1,
            cores: 4,
        };
        let specs = [racy::kernels()[0].clone()];
        let modes = [AnalysisMode::Native, AnalysisMode::Continuous];
        let seeds = [3, 9];
        let rows = run_matrix_seeded(&ctx, &specs, &modes, &seeds);
        assert_eq!(rows.len(), 1);
        let row = &rows[0];
        assert_eq!(row.runs.len(), 4);
        assert_eq!(row.runs[0].mode, "native");
        assert_eq!(row.runs[1].mode, "native");
        assert_eq!(row.runs[2].mode, "continuous");
        assert_eq!(row.runs[3].mode, "continuous");
        // Multi-seed rows carry the per-mode fold-downs.
        assert_eq!(row.seed_stats.len(), 2);
        assert_eq!(row.seed_stats[0].seeds, 2);
        // A seeded run matches the same seed run alone: the harness seed
        // axis reproduces what per-seed ExpContext runs produced.
        let solo = run_matrix_seeded(&ctx, &specs, &modes, &[9]);
        assert_eq!(row.runs[1].makespan, solo[0].runs[0].makespan);
        assert_eq!(row.runs[3].makespan, solo[0].runs[1].makespan);
    }

    #[test]
    fn scale_names_round_trip_and_reject_unknown() {
        for name in ["test", "small", "large"] {
            assert_eq!(scale_label(parse_scale_name(name).unwrap()), name);
        }
        // The old from_env treated these as SMALL silently; they must be
        // errors now.
        for bad in ["Large", "LARGE", "huge", ""] {
            assert!(parse_scale_name(bad).is_err(), "{bad:?} must be rejected");
        }
        assert_eq!(scale_label(Scale { num: 3, den: 2 }), "3/2");
    }

    #[test]
    fn cap_scale_only_remaps_larger_scales() {
        assert_eq!(cap_scale(Scale::LARGE, Scale::SMALL), (Scale::SMALL, true));
        assert_eq!(cap_scale(Scale::SMALL, Scale::SMALL), (Scale::SMALL, false));
        assert_eq!(cap_scale(Scale::TEST, Scale::SMALL), (Scale::TEST, false));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(ratio(12.34), "12.3x");
        assert_eq!(pct(0.1234), "12.3%");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        print_table(&["a", "b"], &[vec!["1".into()]]);
    }
}
