//! Experiment F1 — continuous-analysis overhead.
//!
//! Slowdown of conventional always-on happens-before analysis relative to
//! native execution, per benchmark. The paper's motivation figure: this
//! is the 30×–100×+ cost demand-driven analysis attacks.

use ddrace_bench::{print_table, ratio, run_matrix, save_json, ExpContext};
use ddrace_core::{geomean, AnalysisMode};
use ddrace_workloads::all_benchmarks;

fn main() {
    let ctx = ExpContext::from_env();
    println!(
        "F1: continuous-analysis slowdown (scale {:?}, seed {})\n",
        ctx.scale, ctx.seed
    );
    let specs = all_benchmarks();
    let rows = run_matrix(
        &ctx,
        &specs,
        &[AnalysisMode::Native, AnalysisMode::Continuous],
    );

    let mut per_suite: std::collections::BTreeMap<String, Vec<f64>> = Default::default();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|row| {
            let native = &row.runs[0];
            let cont = &row.runs[1];
            let slowdown = cont.slowdown_vs(native);
            per_suite
                .entry(row.suite.clone())
                .or_default()
                .push(slowdown);
            vec![
                row.name.clone(),
                row.suite.clone(),
                native.makespan.to_string(),
                cont.makespan.to_string(),
                ratio(slowdown),
            ]
        })
        .collect();
    print_table(
        &[
            "benchmark",
            "suite",
            "native cycles",
            "continuous cycles",
            "slowdown",
        ],
        &table,
    );
    println!();
    for (suite, v) in &per_suite {
        println!("{suite} geomean continuous slowdown: {}", ratio(geomean(v)));
    }
    save_json("exp_f1_continuous_overhead", &rows);
}
