//! Experiment F4 — headline speedups, Phoenix suite.
//!
//! Demand-driven analysis (HITM indicator and oracle indicator) versus
//! continuous analysis, per Phoenix benchmark plus the suite geometric
//! mean. The paper's abstract claims ≈10× for this suite with 51× for
//! one program (our `linear_regression`).

use ddrace_bench::{pct, print_table, ratio, run_matrix, save_json, ExpContext};
use ddrace_core::{geomean, AnalysisMode};
use ddrace_workloads::phoenix;

fn main() {
    let ctx = ExpContext::from_env();
    println!(
        "F4: demand-driven speedup over continuous, Phoenix (scale {:?})\n",
        ctx.scale
    );
    let specs = phoenix::suite();
    let modes = [
        AnalysisMode::Native,
        AnalysisMode::Continuous,
        AnalysisMode::demand_hitm(),
        AnalysisMode::demand_oracle(),
    ];
    let rows = run_matrix(&ctx, &specs, &modes);

    let mut hitm_speedups = Vec::new();
    let mut oracle_speedups = Vec::new();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|row| {
            let [native, cont, hitm, oracle] = &row.runs[..] else {
                unreachable!()
            };
            let sp_h = hitm.speedup_over(cont);
            let sp_o = oracle.speedup_over(cont);
            hitm_speedups.push(sp_h);
            oracle_speedups.push(sp_o);
            vec![
                row.name.clone(),
                ratio(cont.slowdown_vs(native)),
                ratio(hitm.slowdown_vs(native)),
                ratio(sp_h),
                ratio(sp_o),
                pct(hitm.analyzed_fraction()),
            ]
        })
        .collect();
    print_table(
        &[
            "benchmark",
            "continuous slowdown",
            "demand slowdown",
            "speedup (HITM)",
            "speedup (oracle)",
            "accesses analyzed",
        ],
        &table,
    );
    println!();
    println!(
        "Phoenix geomean speedup: HITM {}  oracle {}   (paper: ~10x, max 51x)",
        ratio(geomean(&hitm_speedups)),
        ratio(geomean(&oracle_speedups)),
    );
    let max = hitm_speedups.iter().cloned().fold(0.0f64, f64::max);
    println!("Phoenix max speedup (HITM): {}", ratio(max));
    save_json("exp_f4_speedup_phoenix", &rows);
}
