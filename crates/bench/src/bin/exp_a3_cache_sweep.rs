//! Experiment A3 — cache-size effect on indicator recall.
//!
//! Runs the delayed-consumption racy kernel (producer writes, streams
//! through private data evicting its modified lines, consumer reads much
//! later) across private cache sizes. Each sweep point rescales the whole
//! private hierarchy — L2 to the named size and L1 to 1/8th of it, the
//! fixed Nehalem proportion — so "cache size" means the core's private
//! capacity, not the L2 alone. Small caches write the shared lines back
//! before the consumer arrives, so its reads are served from L3/memory
//! with **no HITM** — the indicator misses the sharing, and the
//! demand-driven detector misses the races. This is the paper's core
//! hardware-imprecision argument, quantified; the oracle column shows the
//! idealized indicator is immune.
//!
//! Runs on the campaign harness: the sweep is a variant axis, so
//! `DDRACE_SEEDS` adds seeds, `DDRACE_EVENTS` checkpoints the run, and
//! `DDRACE_RESUME` restores finished jobs from a prior stream.

use ddrace_bench::{pct, print_table, run_exp_campaign, save_json, seeds_from_env, ExpContext};
use ddrace_core::AnalysisMode;
use ddrace_harness::{Campaign, JobVariant};
use ddrace_workloads::racy;

#[derive(Debug)]
struct CachePoint {
    label: String,
    hitm_recall: f64,
    hitm_loads: u64,
    true_wr: u64,
    racy_vars_hitm: usize,
    racy_vars_oracle: usize,
}
ddrace_json::json_struct!(@to CachePoint { label, hitm_recall, hitm_loads, true_wr, racy_vars_hitm, racy_vars_oracle });

fn main() {
    let ctx = ExpContext::from_env();
    println!("A3: private-cache size vs HITM recall (delayed-consumption kernel)\n");

    // Per round: 1024 shared words (128 lines) written, then 512 KiB of
    // private streaming before consumption; 6 rounds so a woken tool has
    // later rounds to observe (scale acts on the round count).
    let spec = racy::delayed_sharing_spec(1024, 512 * 1024, 6);
    let variants = JobVariant::private_cache_sweep();
    let seeds = seeds_from_env(ctx.seed);
    let campaign = Campaign::builder("exp_a3_cache_sweep")
        .workloads([spec])
        .modes([AnalysisMode::demand_hitm(), AnalysisMode::demand_oracle()])
        .variants(variants.clone())
        .seeds(seeds.iter().copied())
        .scale(ctx.scale)
        .cores(ctx.cores)
        .build();
    let report = run_exp_campaign(&campaign);
    let rows = report.rows();
    let row = &rows[0];

    // runs are mode-major, then variant, then seed; mode 0 is demand-HITM
    // and mode 1 the oracle.
    let (n_variants, n_seeds) = (variants.len(), seeds.len());
    let mut points = Vec::new();
    for (s, seed) in seeds.iter().enumerate() {
        for (v, variant) in variants.iter().enumerate() {
            let hitm = &row.runs[v * n_seeds + s];
            let oracle = &row.runs[(n_variants + v) * n_seeds + s];
            // Single-seed sweeps keep the historical size-only labels.
            let label = if n_seeds == 1 {
                variant.name.clone()
            } else {
                format!("{} s{seed}", variant.name)
            };
            points.push(CachePoint {
                label,
                hitm_recall: hitm.cache.hitm_recall(),
                hitm_loads: hitm.cache.total_hitm_loads(),
                true_wr: hitm.cache.sharing.write_read,
                racy_vars_hitm: hitm.races.distinct_addresses,
                racy_vars_oracle: oracle.races.distinct_addresses,
            });
        }
    }

    let table: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.label.clone(),
                p.true_wr.to_string(),
                p.hitm_loads.to_string(),
                pct(p.hitm_recall),
                p.racy_vars_hitm.to_string(),
                p.racy_vars_oracle.to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "private cache",
            "true W→R",
            "HITM loads",
            "HITM recall",
            "racy vars (HITM)",
            "racy vars (oracle)",
        ],
        &table,
    );
    save_json("exp_a3_cache_sweep", &points);
}
