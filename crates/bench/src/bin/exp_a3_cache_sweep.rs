//! Experiment A3 — cache-size effect on indicator recall.
//!
//! Runs the delayed-consumption racy kernel (producer writes, streams
//! through private data evicting its modified lines, consumer reads much
//! later) across private-L2 sizes. Small caches write the shared lines
//! back before the consumer arrives, so its reads are served from
//! L3/memory with **no HITM** — the indicator misses the sharing, and the
//! demand-driven detector misses the races. This is the paper's core
//! hardware-imprecision argument, quantified; the oracle column shows the
//! idealized indicator is immune.

use ddrace_bench::{pct, print_table, save_json, ExpContext};
use ddrace_cache::{CacheConfig, LevelConfig};
use ddrace_core::{AnalysisMode, Simulation};
use ddrace_workloads::racy;

#[derive(Debug)]
struct CachePoint {
    label: String,
    hitm_recall: f64,
    hitm_loads: u64,
    true_wr: u64,
    racy_vars_hitm: usize,
    racy_vars_oracle: usize,
}
ddrace_json::json_struct!(@to CachePoint { label, hitm_recall, hitm_loads, true_wr, racy_vars_hitm, racy_vars_oracle });

fn cache_with_l2(cores: usize, l2_sets: usize) -> CacheConfig {
    let mut cfg = CacheConfig::nehalem(cores);
    cfg.l1 = LevelConfig {
        sets: (l2_sets / 8).max(2),
        ways: 8,
        latency: 4,
    };
    cfg.l2 = LevelConfig {
        sets: l2_sets,
        ways: 8,
        latency: 12,
    };
    cfg
}

fn main() {
    let ctx = ExpContext::from_env();
    println!("A3: private-cache size vs HITM recall (delayed-consumption kernel)\n");

    // Per round: 1024 shared words (128 lines) written, then 512 KiB of
    // private streaming before consumption; 6 rounds so a woken tool has
    // later rounds to observe.
    let words = 1024u64;
    let delay = 512 * 1024u64;
    let rounds = 6;

    let mut points = Vec::new();
    for (label, l2_sets) in [
        ("16KiB", 32usize),
        ("64KiB", 128),
        ("256KiB", 512),
        ("1MiB", 2048),
        ("4MiB", 8192),
    ] {
        let run = |mode| {
            let mut config = ctx.sim_config(mode);
            config.cache = cache_with_l2(ctx.cores, l2_sets);
            Simulation::new(config)
                .run(racy::delayed_sharing(words, delay, rounds))
                .unwrap()
        };
        let hitm = run(AnalysisMode::demand_hitm());
        let oracle = run(AnalysisMode::demand_oracle());
        points.push(CachePoint {
            label: label.to_string(),
            hitm_recall: hitm.cache.hitm_recall(),
            hitm_loads: hitm.cache.total_hitm_loads(),
            true_wr: hitm.cache.sharing.write_read,
            racy_vars_hitm: hitm.races.distinct_addresses,
            racy_vars_oracle: oracle.races.distinct_addresses,
        });
    }

    let table: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.label.clone(),
                p.true_wr.to_string(),
                p.hitm_loads.to_string(),
                pct(p.hitm_recall),
                p.racy_vars_hitm.to_string(),
                p.racy_vars_oracle.to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "private L2",
            "true W→R",
            "HITM loads",
            "HITM recall",
            "racy vars (HITM)",
            "racy vars (oracle)",
        ],
        &table,
    );
    save_json("exp_a3_cache_sweep", &points);
}
