//! Experiment F5 — headline speedups, PARSEC suite.
//!
//! Same measurement as F4 for the PARSEC-like suite; the paper's abstract
//! claims ≈3× here (PARSEC genuinely shares more, so analysis must stay
//! on longer).

use ddrace_bench::{pct, print_table, ratio, run_matrix, save_json, ExpContext};
use ddrace_core::{geomean, AnalysisMode};
use ddrace_workloads::parsec;

fn main() {
    let ctx = ExpContext::from_env();
    println!(
        "F5: demand-driven speedup over continuous, PARSEC (scale {:?})\n",
        ctx.scale
    );
    let specs = parsec::suite();
    let modes = [
        AnalysisMode::Native,
        AnalysisMode::Continuous,
        AnalysisMode::demand_hitm(),
        AnalysisMode::demand_oracle(),
    ];
    let rows = run_matrix(&ctx, &specs, &modes);

    let mut hitm_speedups = Vec::new();
    let mut oracle_speedups = Vec::new();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|row| {
            let [native, cont, hitm, oracle] = &row.runs[..] else {
                unreachable!()
            };
            let sp_h = hitm.speedup_over(cont);
            let sp_o = oracle.speedup_over(cont);
            hitm_speedups.push(sp_h);
            oracle_speedups.push(sp_o);
            vec![
                row.name.clone(),
                ratio(cont.slowdown_vs(native)),
                ratio(hitm.slowdown_vs(native)),
                ratio(sp_h),
                ratio(sp_o),
                pct(hitm.analyzed_fraction()),
            ]
        })
        .collect();
    print_table(
        &[
            "benchmark",
            "continuous slowdown",
            "demand slowdown",
            "speedup (HITM)",
            "speedup (oracle)",
            "accesses analyzed",
        ],
        &table,
    );
    println!();
    println!(
        "PARSEC geomean speedup: HITM {}  oracle {}   (paper: ~3x)",
        ratio(geomean(&hitm_speedups)),
        ratio(geomean(&oracle_speedups)),
    );
    save_json("exp_f5_speedup_parsec", &rows);
}
