//! Experiment F3 — hardware indicator accuracy.
//!
//! Compares the HITM events the PMU can actually observe against
//! ground-truth W→R communication. The gap is the hardware indicator's
//! blind spot: modified lines evicted before the consumer arrives produce
//! no HITM, and W→W/R→W-only communication is invisible to the load
//! event. The oracle column is what the paper's idealized "perfect
//! sharing detector" would see.

use ddrace_bench::{pct, print_table, run_matrix, save_json, ExpContext};
use ddrace_core::AnalysisMode;
use ddrace_workloads::all_benchmarks;

fn main() {
    let ctx = ExpContext::from_env();
    println!(
        "F3: HITM indicator vs ground truth (scale {:?}, seed {})\n",
        ctx.scale, ctx.seed
    );
    let specs = all_benchmarks();
    let rows = run_matrix(&ctx, &specs, &[AnalysisMode::Native]);

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|row| {
            let r = &row.runs[0];
            let truth = r.cache.sharing.total();
            let wr = r.cache.sharing.write_read;
            let hitm = r.cache.total_hitm_loads();
            let rfo = r.cache.total_rfo_hitms();
            vec![
                row.name.clone(),
                truth.to_string(),
                wr.to_string(),
                hitm.to_string(),
                rfo.to_string(),
                pct(r.cache.hitm_recall()),
                pct(if truth == 0 {
                    1.0
                } else {
                    ((hitm + rfo) as f64 / truth as f64).min(1.0)
                }),
            ]
        })
        .collect();
    print_table(
        &[
            "benchmark",
            "true sharing (oracle)",
            "true W→R",
            "HITM loads",
            "RFO HITMs",
            "HITM recall of W→R",
            "any-HITM recall",
        ],
        &table,
    );
    save_json("exp_f3_indicator_accuracy", &rows);
}
