//! Experiment F2 — inter-thread sharing fraction.
//!
//! The fraction of memory accesses that constitute ground-truth
//! inter-core communication (W→R / W→W / R→W at cache-line granularity),
//! per benchmark. The paper's key observation: this fraction is tiny in
//! most programs, so most of continuous analysis is wasted work.

use ddrace_bench::{pct, print_table, run_matrix, save_json, ExpContext};
use ddrace_core::AnalysisMode;
use ddrace_workloads::all_benchmarks;

fn main() {
    let ctx = ExpContext::from_env();
    println!(
        "F2: sharing fraction of all accesses (scale {:?}, seed {})\n",
        ctx.scale, ctx.seed
    );
    let specs = all_benchmarks();
    let rows = run_matrix(&ctx, &specs, &[AnalysisMode::Native]);

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|row| {
            let r = &row.runs[0];
            let wr_frac = if r.accesses_total == 0 {
                0.0
            } else {
                r.cache.sharing.write_read as f64 / r.accesses_total as f64
            };
            vec![
                row.name.clone(),
                row.suite.clone(),
                r.accesses_total.to_string(),
                r.cache.sharing.total().to_string(),
                pct(r.cache.sharing_fraction()),
                pct(wr_frac),
            ]
        })
        .collect();
    print_table(
        &[
            "benchmark",
            "suite",
            "accesses",
            "sharing events",
            "any sharing",
            "W→R only",
        ],
        &table,
    );
    save_json("exp_f2_sharing_fraction", &rows);
}
