//! Experiment A6 — hardware prefetcher perturbation (extension).
//!
//! Real machines ship next-line prefetchers; a prefetch that hits a
//! remote modified line downgrades it *before* the demand load retires,
//! so the retired-load HITM event never fires. On streaming
//! producer→consumer sharing this hides most of the signal: the indicator
//! sees a trickle instead of a torrent. With a sample-after of 1 the
//! trickle still wakes the tool; combined with larger sampling periods
//! (as F6 motivates for overhead) it goes fully blind.

use ddrace_bench::{pct, print_table, save_json, ExpContext};
use ddrace_core::{AnalysisMode, ControllerConfig, Simulation};
use ddrace_pmu::IndicatorMode;
use ddrace_workloads::racy;

#[derive(Debug)]
struct PrefetchRow {
    prefetch: bool,
    period: u64,
    hitm_loads: u64,
    prefetch_steals: u64,
    hitm_recall: f64,
    racy_vars: usize,
}
ddrace_json::json_struct!(@to PrefetchRow { prefetch, period, hitm_loads, prefetch_steals, hitm_recall, racy_vars });

fn main() {
    let ctx = ExpContext::from_env();
    println!("A6: next-line prefetcher vs HITM visibility\n");

    // Sequential handoff with negligible eviction pressure: without a
    // prefetcher every consumed line is a HITM; with one, the prefetcher
    // races ahead of the consumer and swallows the events.
    let program = || racy::delayed_sharing(1024, 4_096, 6);

    let mut rows = Vec::new();
    for prefetch in [false, true] {
        for period in [1u64, 10] {
            let mode = AnalysisMode::Demand {
                indicator: IndicatorMode::HitmSampling {
                    period,
                    skid: 20,
                    include_rfo: false,
                },
                controller: ControllerConfig::default(),
            };
            let mut config = ctx.sim_config(mode);
            config.cache.prefetch_next_line = prefetch;
            let r = Simulation::new(config).run(program()).unwrap();
            rows.push(PrefetchRow {
                prefetch,
                period,
                hitm_loads: r.cache.total_hitm_loads(),
                prefetch_steals: r.cache.prefetch_steals,
                hitm_recall: r.cache.hitm_recall(),
                racy_vars: r.races.distinct_addresses,
            });
        }
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                if r.prefetch { "on" } else { "off" }.to_string(),
                r.period.to_string(),
                r.hitm_loads.to_string(),
                r.prefetch_steals.to_string(),
                pct(r.hitm_recall),
                r.racy_vars.to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "prefetcher",
            "sample-after",
            "HITM loads",
            "stolen HITMs",
            "HITM recall",
            "racy vars found",
        ],
        &table,
    );
    save_json("exp_a6_prefetch", &rows);
}
