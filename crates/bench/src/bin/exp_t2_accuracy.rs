//! Experiment T2 — race-detection accuracy.
//!
//! Runs every racy kernel plus racy variants of representative suite
//! benchmarks under continuous, demand-HITM and demand-oracle analysis
//! and compares the distinct racy variables each configuration reports.
//! The paper's finding: demand-driven analysis catches (nearly) all races
//! continuous analysis catches, with occasional misses attributable to
//! the hardware indicator's blind spots.

use ddrace_bench::{print_table, run_matrix, save_json, ExpContext};
use ddrace_core::AnalysisMode;
use ddrace_workloads::{parsec, phoenix, racy};

fn main() {
    let ctx = ExpContext::from_env();
    println!(
        "T2: races detected per configuration (scale {:?}, seed {})\n",
        ctx.scale, ctx.seed
    );

    let mut specs = racy::kernels();
    specs.push(phoenix::histogram().with_injected_race(60));
    specs.push(phoenix::kmeans().with_injected_race(30));
    specs.push(phoenix::linear_regression().with_injected_race(40));
    specs.push(parsec::blackscholes().with_injected_race(40));
    specs.push(parsec::canneal().with_injected_race(60));
    specs.push(parsec::streamcluster().with_injected_race(20));

    let modes = [
        AnalysisMode::Continuous,
        AnalysisMode::demand_hitm(),
        AnalysisMode::demand_oracle(),
    ];
    let rows = run_matrix(&ctx, &specs, &modes);

    let mut caught_h = 0usize;
    let mut caught_o = 0usize;
    let mut total = 0usize;
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|row| {
            let [cont, hitm, oracle] = &row.runs[..] else {
                unreachable!()
            };
            let c = cont.races.distinct_addresses;
            let h = hitm.races.distinct_addresses;
            let o = oracle.races.distinct_addresses;
            total += 1;
            if h > 0 {
                caught_h += 1;
            }
            if o > 0 {
                caught_o += 1;
            }
            vec![
                row.name.clone(),
                c.to_string(),
                h.to_string(),
                o.to_string(),
                cont.races.occurrences.to_string(),
                hitm.races.occurrences.to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "workload",
            "racy vars (continuous)",
            "racy vars (demand-HITM)",
            "racy vars (oracle)",
            "events (cont)",
            "events (HITM)",
        ],
        &table,
    );
    println!();
    println!(
        "racy workloads flagged: demand-HITM {caught_h}/{total}, demand-oracle {caught_o}/{total}"
    );
    save_json("exp_t2_accuracy", &rows);
}
