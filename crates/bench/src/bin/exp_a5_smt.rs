//! Experiment A5 — SMT blindness (extension).
//!
//! Two hardware threads on the same physical core share its private
//! caches, so their mutual data sharing never crosses the coherence
//! fabric and produces **no HITM events** — a limitation the paper
//! discusses for SMT machines. We emulate SMT by pinning more threads
//! than cores (thread `t` runs on core `t mod cores`): the racy pair's
//! sharing is fully visible on separate cores and fully invisible when
//! co-scheduled, taking demand-driven detection with it. The oracle
//! indicator (and continuous analysis) are unaffected — the blindness is
//! purely in the hardware signal.

use ddrace_bench::{print_table, save_json, ExpContext};
use ddrace_core::{AnalysisMode, SimConfig, Simulation};
use ddrace_workloads::{racy, Scale};

#[derive(Debug)]
struct SmtRow {
    cores: usize,
    threads: u32,
    hitm_loads: u64,
    true_wr: u64,
    racy_vars_demand: usize,
    racy_vars_continuous: usize,
}
ddrace_json::json_struct!(@to SmtRow { cores, threads, hitm_loads, true_wr, racy_vars_demand, racy_vars_continuous });

fn main() {
    let ctx = ExpContext::from_env();
    println!("A5: SMT co-scheduling vs HITM visibility\n");

    // unprotected_counter has 4 workers + main (5 threads): on 8 cores
    // every thread has its own core; on 2 cores workers pair up; on 1
    // core everything is "SMT siblings" of one core.
    let spec = racy::unprotected_counter();
    let scale = if ctx.scale == Scale::LARGE {
        Scale::SMALL
    } else {
        ctx.scale
    };

    let mut rows = Vec::new();
    for cores in [8usize, 4, 2, 1] {
        let run = |mode| {
            let mut cfg = SimConfig::new(cores, mode);
            cfg.scheduler = ctx.scheduler();
            Simulation::new(cfg)
                .run(spec.program(scale, ctx.seed))
                .unwrap()
        };
        let demand = run(AnalysisMode::demand_hitm());
        let cont = run(AnalysisMode::Continuous);
        rows.push(SmtRow {
            cores,
            threads: spec.total_threads(),
            hitm_loads: demand.cache.total_hitm_loads(),
            true_wr: demand.cache.sharing.write_read,
            racy_vars_demand: demand.races.distinct_addresses,
            racy_vars_continuous: cont.races.distinct_addresses,
        });
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{} threads / {} cores", r.threads, r.cores),
                r.true_wr.to_string(),
                r.hitm_loads.to_string(),
                r.racy_vars_demand.to_string(),
                r.racy_vars_continuous.to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "placement",
            "true W→R (inter-core)",
            "HITM loads",
            "racy vars (demand)",
            "racy vars (continuous)",
        ],
        &table,
    );
    println!("\nCo-scheduled threads share caches: no coherence events, no wake-up signal.");
    save_json("exp_a5_smt", &rows);
}
