//! Experiment A5 — SMT blindness (extension).
//!
//! Two hardware threads on the same physical core share its private
//! caches, so their mutual data sharing never crosses the coherence
//! fabric and produces **no HITM events** — a limitation the paper
//! discusses for SMT machines. We emulate SMT by pinning more threads
//! than cores (thread `t` runs on core `t mod cores`): the racy pair's
//! sharing is fully visible on separate cores and fully invisible when
//! co-scheduled, taking demand-driven detection with it. The oracle
//! indicator (and continuous analysis) are unaffected — the blindness is
//! purely in the hardware signal.
//!
//! Runs on the campaign harness: the core-count ladder is a variant
//! axis, so `DDRACE_SEEDS` adds seeds, `DDRACE_EVENTS` checkpoints the
//! run, and `DDRACE_RESUME` restores finished jobs from a prior stream.

use ddrace_bench::{
    cap_scale, print_table, run_exp_campaign, save_json, scale_label, seeds_from_env, ExpContext,
};
use ddrace_core::AnalysisMode;
use ddrace_harness::{Campaign, JobVariant};
use ddrace_workloads::{racy, Scale};

#[derive(Debug)]
struct SmtRow {
    cores: usize,
    threads: u32,
    scale: String,
    hitm_loads: u64,
    true_wr: u64,
    racy_vars_demand: usize,
    racy_vars_continuous: usize,
}
ddrace_json::json_struct!(@to SmtRow { cores, threads, scale, hitm_loads, true_wr, racy_vars_demand, racy_vars_continuous });

fn main() {
    let ctx = ExpContext::from_env();
    println!("A5: SMT co-scheduling vs HITM visibility\n");

    // unprotected_counter has 4 workers + main (5 threads): on 8 cores
    // every thread has its own core; on 2 cores workers pair up; on 1
    // core everything is "SMT siblings" of one core.
    let spec = racy::unprotected_counter();
    // The single-core points serialize badly at LARGE; cap the scale and
    // say so instead of silently running a smaller experiment than asked.
    let (scale, remapped) = cap_scale(ctx.scale, Scale::SMALL);
    if remapped {
        eprintln!(
            "note: A5 caps the workload scale at `small`; DDRACE_SCALE={} runs at `{}`",
            scale_label(ctx.scale),
            scale_label(scale)
        );
    }

    let core_points = [8usize, 4, 2, 1];
    let variants: Vec<JobVariant> = core_points
        .iter()
        .map(|&c| JobVariant::with_cores(c))
        .collect();
    let seeds = seeds_from_env(ctx.seed);
    let campaign = Campaign::builder("exp_a5_smt")
        .workloads([spec.clone()])
        .modes([AnalysisMode::demand_hitm(), AnalysisMode::Continuous])
        .variants(variants.clone())
        .seeds(seeds.iter().copied())
        .scale(scale)
        .cores(ctx.cores)
        .build();
    let report = run_exp_campaign(&campaign);
    let report_rows = report.rows();
    let row = &report_rows[0];

    // runs are mode-major, then variant, then seed; mode 0 is demand-HITM
    // and mode 1 continuous.
    let (n_variants, n_seeds) = (variants.len(), seeds.len());
    let mut rows = Vec::new();
    for s in 0..n_seeds {
        for (v, &cores) in core_points.iter().enumerate() {
            let demand = &row.runs[v * n_seeds + s];
            let cont = &row.runs[(n_variants + v) * n_seeds + s];
            rows.push(SmtRow {
                cores,
                threads: spec.total_threads(),
                scale: scale_label(scale),
                hitm_loads: demand.cache.total_hitm_loads(),
                true_wr: demand.cache.sharing.write_read,
                racy_vars_demand: demand.races.distinct_addresses,
                racy_vars_continuous: cont.races.distinct_addresses,
            });
        }
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let placement = format!("{} threads / {} cores", r.threads, r.cores);
            vec![
                if n_seeds == 1 {
                    placement
                } else {
                    format!("{placement} s{}", seeds[i / n_variants])
                },
                r.true_wr.to_string(),
                r.hitm_loads.to_string(),
                r.racy_vars_demand.to_string(),
                r.racy_vars_continuous.to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "placement",
            "true W→R (inter-core)",
            "HITM loads",
            "racy vars (demand)",
            "racy vars (continuous)",
        ],
        &table,
    );
    println!("\nCo-scheduled threads share caches: no coherence events, no wake-up signal.");
    save_json("exp_a5_smt", &rows);
}
