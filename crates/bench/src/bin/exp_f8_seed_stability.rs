//! Experiment F8 — seed stability (methodology check).
//!
//! Every headline number comes from seeded, jittered interleavings; this
//! experiment reruns the F4/F5 speedup measurement across several seeds
//! and reports min/mean/max per benchmark, demonstrating that the
//! reproduction's conclusions do not hinge on one lucky schedule.
//!
//! Runs on the campaign harness's seed axis: one campaign of
//! workload × {continuous, demand-hitm} × seed jobs on the worker pool,
//! instead of a hand-rolled per-seed loop.

use ddrace_bench::{print_table, ratio, run_matrix_seeded, save_json, ExpContext};
use ddrace_core::{geomean, AnalysisMode};
use ddrace_workloads::{parsec, phoenix, WorkloadSpec};

#[derive(Debug)]
struct StabilityRow {
    benchmark: String,
    speedups: Vec<f64>,
    min: f64,
    mean: f64,
    max: f64,
}
ddrace_json::json_struct!(@to StabilityRow { benchmark, speedups, min, mean, max });

fn main() {
    let ctx = ExpContext::from_env();
    let seeds: Vec<u64> = (0..5).map(|i| ctx.seed + i * 1_000).collect();
    println!(
        "F8: speedup stability across seeds {seeds:?} (scale {:?})\n",
        ctx.scale
    );

    let specs: Vec<WorkloadSpec> = vec![
        phoenix::linear_regression(),
        phoenix::kmeans(),
        phoenix::word_count(),
        parsec::canneal(),
        parsec::swaptions(),
        parsec::dedup(),
    ];
    let modes = [AnalysisMode::Continuous, AnalysisMode::demand_hitm()];
    let matrix = run_matrix_seeded(&ctx, &specs, &modes, &seeds);

    let mut rows = Vec::new();
    for row in &matrix {
        // Runs are mode-major, seed innermost: continuous occupies the
        // first seeds.len() slots, demand-hitm the next.
        let cont = row.mode_runs(0, seeds.len());
        let demand = row.mode_runs(1, seeds.len());
        let speedups: Vec<f64> = demand
            .iter()
            .zip(cont)
            .map(|(d, c)| d.speedup_over(c))
            .collect();
        let min = speedups.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = speedups.iter().cloned().fold(0.0f64, f64::max);
        let mean = geomean(&speedups);
        rows.push(StabilityRow {
            benchmark: row.name.clone(),
            speedups,
            min,
            mean,
            max,
        });
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.benchmark.clone(),
                ratio(r.min),
                ratio(r.mean),
                ratio(r.max),
                format!("{:.1}%", (r.max - r.min) / r.mean * 100.0),
            ]
        })
        .collect();
    print_table(&["benchmark", "min", "geomean", "max", "spread"], &table);
    save_json("exp_f8_seed_stability", &rows);
}
