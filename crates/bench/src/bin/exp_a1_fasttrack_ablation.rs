//! Experiment A1 — detector-algorithm ablation.
//!
//! Continuous analysis with FastTrack (adaptive epochs) versus Djit⁺
//! (full vector clocks) versus the Eraser lockset baseline: same
//! programs, same schedules. Reports detector work counters, wall-clock
//! of the simulation (dominated by detector cost), and races found —
//! lockset's fork/join false positives show up exactly where expected.

use ddrace_bench::{pct, print_table, ratio, run_one_with, save_json, ExpContext};
use ddrace_core::{AnalysisMode, DetectorKind};
use ddrace_workloads::{phoenix, racy};
use std::time::Instant;

#[derive(Debug)]
struct AblationRow {
    workload: String,
    detector: String,
    wall_ms: f64,
    fast_path_fraction: f64,
    escalations: u64,
    racy_vars: usize,
}
ddrace_json::json_struct!(@to AblationRow { workload, detector, wall_ms, fast_path_fraction, escalations, racy_vars });

fn main() {
    let ctx = ExpContext::from_env();
    println!("A1: FastTrack vs Djit vs lockset under continuous analysis\n");

    let specs = vec![
        phoenix::kmeans(),
        phoenix::word_count(),
        racy::unprotected_counter(),
        racy::mostly_locked(),
    ];
    let kinds = [
        DetectorKind::FastTrack,
        DetectorKind::Djit,
        DetectorKind::LockSet,
    ];

    let mut out = Vec::new();
    for spec in &specs {
        for kind in kinds {
            let mut config = ctx.sim_config(AnalysisMode::Continuous);
            config.detector_kind = kind;
            let t0 = Instant::now();
            let r = run_one_with(&ctx, spec, config);
            let wall = t0.elapsed().as_secs_f64() * 1e3;
            let stats = r.detector.expect("continuous mode has detector stats");
            let fast = if stats.accesses_checked == 0 {
                0.0
            } else {
                stats.fast_path_hits as f64 / stats.accesses_checked as f64
            };
            out.push(AblationRow {
                workload: spec.name.clone(),
                detector: format!("{kind:?}").to_lowercase(),
                wall_ms: wall,
                fast_path_fraction: fast,
                escalations: stats.escalations,
                racy_vars: r.races.distinct_addresses,
            });
        }
    }

    let table: Vec<Vec<String>> = out
        .iter()
        .map(|r| {
            // Relative to the FastTrack run of the same workload.
            let baseline = out
                .iter()
                .find(|o| o.workload == r.workload && o.detector == "fasttrack")
                .map(|o| o.wall_ms)
                .unwrap_or(r.wall_ms);
            vec![
                r.workload.clone(),
                r.detector.clone(),
                ratio(r.wall_ms / baseline.max(1e-9)),
                format!("{:.1}ms", r.wall_ms),
                pct(r.fast_path_fraction),
                r.escalations.to_string(),
                r.racy_vars.to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "workload",
            "detector",
            "rel. wall",
            "wall",
            "fast-path",
            "escalations",
            "racy vars",
        ],
        &table,
    );
    println!("\nNote: lockset over-reports on fork/join programs by design (no HB edges).");
    save_json("exp_a1_fasttrack_ablation", &out);
}
