//! Experiment T3 — false-positive validation (negative controls).
//!
//! Every clean workload — the full Phoenix + PARSEC suites plus the
//! structured synchronization kernels (bounded buffer, stencil, work
//! queue) — under both happens-before detectors, across several seeds.
//! The required value in every HB cell is **0**: happens-before analysis
//! is precise on observed executions, and a single false positive would
//! be a detector bug. The lockset column shows why the field moved away
//! from Eraser: structurally clean fork/join and barrier programs light
//! it up.

use ddrace_bench::{print_table, save_json, ExpContext};
use ddrace_core::{AnalysisMode, DetectorKind, SimConfig, Simulation};
use ddrace_program::Program;
use ddrace_workloads::{all_benchmarks, clean, Scale};

#[derive(Debug)]
struct ControlRow {
    workload: String,
    fasttrack: usize,
    djit: usize,
    lockset: usize,
}
ddrace_json::json_struct!(@to ControlRow { workload, fasttrack, djit, lockset });

fn run(program: Program, kind: DetectorKind, cores: usize, seed: u64) -> usize {
    let mut cfg = SimConfig::new(cores, AnalysisMode::Continuous);
    cfg.scheduler = ddrace_program::SchedulerConfig {
        quantum: 16,
        seed,
        jitter: true,
    };
    cfg.detector_kind = kind;
    Simulation::new(cfg)
        .run(program)
        .expect("clean program schedules")
        .races
        .distinct
}

fn main() {
    let ctx = ExpContext::from_env();
    // Negative controls are about correctness, not scale: TEST size keeps
    // the full sweep fast without changing the verdicts.
    let scale = Scale::TEST;
    println!("T3: false positives on race-free workloads (3 seeds each)\n");

    let mut rows: Vec<ControlRow> = Vec::new();
    let kernels: Vec<(String, Box<dyn Fn() -> Program>)> = vec![
        (
            "bounded_buffer".into(),
            Box::new(|| clean::bounded_buffer(4, 80)),
        ),
        ("stencil".into(), Box::new(|| clean::stencil(4, 8, 4))),
        ("work_queue".into(), Box::new(|| clean::work_queue(4, 40))),
    ];

    for spec in all_benchmarks() {
        let mut row = ControlRow {
            workload: spec.name.clone(),
            fasttrack: 0,
            djit: 0,
            lockset: 0,
        };
        for seed in [1u64, 2, 3] {
            row.fasttrack += run(
                spec.program(scale, seed),
                DetectorKind::FastTrack,
                ctx.cores,
                seed,
            );
            row.djit += run(
                spec.program(scale, seed),
                DetectorKind::Djit,
                ctx.cores,
                seed,
            );
            row.lockset += run(
                spec.program(scale, seed),
                DetectorKind::LockSet,
                ctx.cores,
                seed,
            );
        }
        rows.push(row);
    }
    for (name, make) in &kernels {
        let mut row = ControlRow {
            workload: name.clone(),
            fasttrack: 0,
            djit: 0,
            lockset: 0,
        };
        for seed in [1u64, 2, 3] {
            row.fasttrack += run(make(), DetectorKind::FastTrack, 4, seed);
            row.djit += run(make(), DetectorKind::Djit, 4, seed);
            row.lockset += run(make(), DetectorKind::LockSet, 4, seed);
        }
        rows.push(row);
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.workload.clone(),
                r.fasttrack.to_string(),
                r.djit.to_string(),
                r.lockset.to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "workload (race-free)",
            "fasttrack FPs",
            "djit FPs",
            "lockset FPs",
        ],
        &table,
    );

    let hb_fps: usize = rows.iter().map(|r| r.fasttrack + r.djit).sum();
    println!("\nHB detectors: {hb_fps} false positives total (must be 0).");
    if hb_fps > 0 {
        std::process::exit(1);
    }
    save_json("exp_t3_negative_controls", &rows);
}
