//! Experiment F6 — sampling-period and skid sensitivity.
//!
//! Sweeps the HITM counter's sample-after value: a larger period takes
//! fewer interrupts (less overhead while idle) but reacts later and can
//! miss short sharing bursts entirely. Reported per period: speedup over
//! continuous and racy variables found on a racy workload. A second
//! sweep varies the interrupt **skid** at period 1: a late-delivered PMI
//! enables analysis after the racy burst has already passed.

use ddrace_bench::{print_table, ratio, run_one, run_one_with, save_json, ExpContext};
use ddrace_core::{AnalysisMode, ControllerConfig};
use ddrace_pmu::IndicatorMode;
use ddrace_workloads::{phoenix, racy};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct SweepPoint {
    period: u64,
    speedup_clean: f64,
    pmis_clean: u64,
    racy_vars_found: usize,
    speedup_racy: f64,
}

fn main() {
    let ctx = ExpContext::from_env();
    println!(
        "F6: sample-after sweep (scale {:?}, seed {})\n",
        ctx.scale, ctx.seed
    );

    let clean = phoenix::kmeans();
    let racy_spec = racy::sparse_race();
    let cont_clean = run_one(&ctx, &clean, AnalysisMode::Continuous);
    let cont_racy = run_one(&ctx, &racy_spec, AnalysisMode::Continuous);

    let mut points = Vec::new();
    for period in [1u64, 2, 5, 10, 20, 50, 100, 500, 1000] {
        let mode = AnalysisMode::Demand {
            indicator: IndicatorMode::HitmSampling {
                period,
                skid: 20,
                include_rfo: false,
            },
            controller: ControllerConfig::default(),
        };
        let demand_clean = run_one_with(&ctx, &clean, ctx.sim_config(mode));
        let demand_racy = run_one_with(&ctx, &racy_spec, ctx.sim_config(mode));
        points.push(SweepPoint {
            period,
            speedup_clean: demand_clean.speedup_over(&cont_clean),
            pmis_clean: demand_clean.pmis,
            racy_vars_found: demand_racy.races.distinct_addresses,
            speedup_racy: demand_racy.speedup_over(&cont_racy),
        });
    }

    let table: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.period.to_string(),
                ratio(p.speedup_clean),
                p.pmis_clean.to_string(),
                p.racy_vars_found.to_string(),
                ratio(p.speedup_racy),
            ]
        })
        .collect();
    print_table(
        &[
            "sample-after",
            "speedup kmeans (clean)",
            "PMIs (clean)",
            "racy vars found (sparse_race)",
            "speedup sparse_race",
        ],
        &table,
    );
    println!(
        "\ncontinuous finds {} racy var(s) on sparse_race",
        cont_racy.races.distinct_addresses
    );

    // Skid sweep at period 1: how late may the interrupt land before the
    // enable misses the burst?
    #[derive(Debug, Serialize)]
    struct SkidPoint {
        skid: u32,
        racy_vars_found: usize,
        pmis: u64,
    }
    let mut skid_points = Vec::new();
    for skid in [0u32, 10, 20, 100, 500, 2_000] {
        let mode = AnalysisMode::Demand {
            indicator: IndicatorMode::HitmSampling {
                period: 1,
                skid,
                include_rfo: false,
            },
            controller: ControllerConfig::default(),
        };
        let r = run_one_with(&ctx, &racy_spec, ctx.sim_config(mode));
        skid_points.push(SkidPoint {
            skid,
            racy_vars_found: r.races.distinct_addresses,
            pmis: r.pmis,
        });
    }
    println!();
    let skid_table: Vec<Vec<String>> = skid_points
        .iter()
        .map(|p| {
            vec![
                p.skid.to_string(),
                p.racy_vars_found.to_string(),
                p.pmis.to_string(),
            ]
        })
        .collect();
    print_table(
        &["skid (accesses)", "racy vars found (sparse_race)", "PMIs"],
        &skid_table,
    );
    save_json("exp_f6_sampling_sweep", &points);
    save_json("exp_f6_skid_sweep", &skid_points);
}
