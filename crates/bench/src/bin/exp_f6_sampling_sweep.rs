//! Experiment F6 — sampling-period and skid sensitivity.
//!
//! Sweeps the HITM counter's sample-after value: a larger period takes
//! fewer interrupts (less overhead while idle) but reacts later and can
//! miss short sharing bursts entirely. Reported per period: speedup over
//! continuous and racy variables found on a racy workload. A second
//! sweep varies the interrupt **skid** at period 1: a late-delivered PMI
//! enables analysis after the racy burst has already passed.
//!
//! Both sweeps run as [`ddrace_harness`] campaigns: the mode axis carries
//! the sweep, so every point executes in parallel on the worker pool.

use ddrace_bench::{host_workers, print_table, ratio, save_json, ExpContext};
use ddrace_core::{AnalysisMode, ControllerConfig};
use ddrace_harness::{run_campaign, Campaign, EventSink};
use ddrace_pmu::IndicatorMode;
use ddrace_workloads::{phoenix, racy};

#[derive(Debug)]
struct SweepPoint {
    period: u64,
    speedup_clean: f64,
    pmis_clean: u64,
    racy_vars_found: usize,
    speedup_racy: f64,
}
ddrace_json::json_struct!(@to SweepPoint { period, speedup_clean, pmis_clean, racy_vars_found, speedup_racy });

fn demand_at(period: u64, skid: u32) -> AnalysisMode {
    AnalysisMode::Demand {
        indicator: IndicatorMode::HitmSampling {
            period,
            skid,
            include_rfo: false,
        },
        controller: ControllerConfig::default(),
    }
}

fn main() {
    let ctx = ExpContext::from_env();
    println!(
        "F6: sample-after sweep (scale {:?}, seed {})\n",
        ctx.scale, ctx.seed
    );

    let periods = [1u64, 2, 5, 10, 20, 50, 100, 500, 1000];
    let skids = [0u32, 10, 20, 100, 500, 2_000];

    // Mode axis: continuous baseline first, then one demand mode per
    // period. Workload axis: the clean and the racy benchmark. One
    // campaign covers the whole period sweep.
    let mut modes = vec![AnalysisMode::Continuous];
    modes.extend(periods.iter().map(|&p| demand_at(p, 20)));
    let campaign = Campaign::builder("f6-period-sweep")
        .workloads([phoenix::kmeans(), racy::sparse_race()])
        .modes(modes.clone())
        .seeds([ctx.seed])
        .scale(ctx.scale)
        .cores(ctx.cores)
        .build();
    let report = run_campaign(&campaign, host_workers(), &EventSink::null());
    let get = |workload: usize, mode: usize| {
        report
            .result(workload * modes.len() + mode)
            .expect("F6 job failed")
    };
    let cont_clean = get(0, 0);
    let cont_racy = get(1, 0);

    let points: Vec<SweepPoint> = periods
        .iter()
        .enumerate()
        .map(|(i, &period)| {
            let demand_clean = get(0, 1 + i);
            let demand_racy = get(1, 1 + i);
            SweepPoint {
                period,
                speedup_clean: demand_clean.speedup_over(cont_clean),
                pmis_clean: demand_clean.pmis,
                racy_vars_found: demand_racy.races.distinct_addresses,
                speedup_racy: demand_racy.speedup_over(cont_racy),
            }
        })
        .collect();

    let table: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.period.to_string(),
                ratio(p.speedup_clean),
                p.pmis_clean.to_string(),
                p.racy_vars_found.to_string(),
                ratio(p.speedup_racy),
            ]
        })
        .collect();
    print_table(
        &[
            "sample-after",
            "speedup kmeans (clean)",
            "PMIs (clean)",
            "racy vars found (sparse_race)",
            "speedup sparse_race",
        ],
        &table,
    );
    println!(
        "\ncontinuous finds {} racy var(s) on sparse_race",
        cont_racy.races.distinct_addresses
    );

    // Skid sweep at period 1: how late may the interrupt land before the
    // enable misses the burst?
    #[derive(Debug)]
    struct SkidPoint {
        skid: u32,
        racy_vars_found: usize,
        pmis: u64,
    }
    ddrace_json::json_struct!(@to SkidPoint { skid, racy_vars_found, pmis });

    let skid_campaign = Campaign::builder("f6-skid-sweep")
        .workloads([racy::sparse_race()])
        .modes(skids.iter().map(|&s| demand_at(1, s)))
        .seeds([ctx.seed])
        .scale(ctx.scale)
        .cores(ctx.cores)
        .build();
    let skid_report = run_campaign(&skid_campaign, host_workers(), &EventSink::null());
    let skid_points: Vec<SkidPoint> = skids
        .iter()
        .enumerate()
        .map(|(i, &skid)| {
            let r = skid_report.result(i).expect("F6 skid job failed");
            SkidPoint {
                skid,
                racy_vars_found: r.races.distinct_addresses,
                pmis: r.pmis,
            }
        })
        .collect();
    println!();
    let skid_table: Vec<Vec<String>> = skid_points
        .iter()
        .map(|p| {
            vec![
                p.skid.to_string(),
                p.racy_vars_found.to_string(),
                p.pmis.to_string(),
            ]
        })
        .collect();
    print_table(
        &["skid (accesses)", "racy vars found (sparse_race)", "PMIs"],
        &skid_table,
    );
    save_json("exp_f6_sampling_sweep", &points);
    save_json("exp_f6_skid_sweep", &skid_points);
}
