//! Runs every experiment binary in sequence — the one-shot "regenerate
//! the whole evaluation" entry point.
//!
//! Equivalent to running each `exp_*` binary by hand; honours the same
//! `DDRACE_*` environment variables.

use std::process::Command;

const EXPERIMENTS: &[&str] = &[
    "exp_t1_characterization",
    "exp_f1_continuous_overhead",
    "exp_f2_sharing_fraction",
    "exp_f3_indicator_accuracy",
    "exp_f4_speedup_phoenix",
    "exp_f5_speedup_parsec",
    "exp_t2_accuracy",
    "exp_t3_negative_controls",
    "exp_f6_sampling_sweep",
    "exp_f7_enabled_fraction",
    "exp_f8_seed_stability",
    "exp_a1_fasttrack_ablation",
    "exp_a2_cooldown_sweep",
    "exp_a3_cache_sweep",
    "exp_a4_scope",
    "exp_a5_smt",
    "exp_a6_prefetch",
    "exp_a7_granularity",
];

fn main() {
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    let mut failures = Vec::new();
    for name in EXPERIMENTS {
        println!("\n======================================================================");
        println!("== {name}");
        println!("======================================================================\n");
        let status = Command::new(dir.join(name)).status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("{name} exited with {s}");
                failures.push(*name);
            }
            Err(e) => {
                eprintln!("{name} failed to start: {e} (build with `cargo build --release -p ddrace-bench` first)");
                failures.push(*name);
            }
        }
    }
    if failures.is_empty() {
        println!("\nAll {} experiments completed.", EXPERIMENTS.len());
    } else {
        eprintln!("\nFailed experiments: {failures:?}");
        std::process::exit(1);
    }
}
