//! Experiment A4 — enable-scope ablation (extension).
//!
//! The paper enables analysis globally on a sharing signal; it discusses
//! finer-grained enabling as an alternative. This experiment compares
//! [`EnableScope::Global`] against [`EnableScope::PerCore`] (only the
//! interrupted core's thread is instrumented). The measured trade-off is
//! *not* a free win for per-core: toggles are cheaper and truly
//! sharing-free cores stay dark, but every sharing core must ride out its
//! **own** cooldown independently — on iterative communication patterns
//! total residency comes out *higher* than one global controller, and the
//! producer side of each pair can stay unobserved.
//!
//! [`EnableScope::Global`]: ddrace_core::EnableScope::Global
//! [`EnableScope::PerCore`]: ddrace_core::EnableScope::PerCore

use ddrace_bench::{pct, print_table, ratio, run_one, run_one_with, save_json, ExpContext};
use ddrace_core::{AnalysisMode, ControllerConfig, EnableScope};
use ddrace_pmu::IndicatorMode;
use ddrace_workloads::{parsec, phoenix, racy, WorkloadSpec};

#[derive(Debug)]
struct ScopeRow {
    workload: String,
    speedup_global: f64,
    speedup_per_core: f64,
    analyzed_global: f64,
    analyzed_per_core: f64,
    racy_vars_global: usize,
    racy_vars_per_core: usize,
}
ddrace_json::json_struct!(@to ScopeRow { workload, speedup_global, speedup_per_core, analyzed_global, analyzed_per_core, racy_vars_global, racy_vars_per_core });

fn demand(scope: EnableScope) -> AnalysisMode {
    AnalysisMode::Demand {
        indicator: IndicatorMode::hitm_default(),
        controller: ControllerConfig {
            scope,
            ..ControllerConfig::default()
        },
    }
}

fn main() {
    let ctx = ExpContext::from_env();
    println!(
        "A4: global vs per-core enable scope (scale {:?})\n",
        ctx.scale
    );

    let specs: Vec<WorkloadSpec> = vec![
        phoenix::kmeans(),
        phoenix::word_count(),
        parsec::bodytrack(),
        parsec::streamcluster(),
        racy::unprotected_counter(),
        racy::mostly_locked(),
    ];

    let mut rows = Vec::new();
    for spec in &specs {
        let cont = run_one(&ctx, spec, AnalysisMode::Continuous);
        let global = run_one_with(&ctx, spec, ctx.sim_config(demand(EnableScope::Global)));
        let per_core = run_one_with(&ctx, spec, ctx.sim_config(demand(EnableScope::PerCore)));
        rows.push(ScopeRow {
            workload: spec.name.clone(),
            speedup_global: global.speedup_over(&cont),
            speedup_per_core: per_core.speedup_over(&cont),
            analyzed_global: global.analyzed_fraction(),
            analyzed_per_core: per_core.analyzed_fraction(),
            racy_vars_global: global.races.distinct_addresses,
            racy_vars_per_core: per_core.races.distinct_addresses,
        });
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.workload.clone(),
                ratio(r.speedup_global),
                ratio(r.speedup_per_core),
                pct(r.analyzed_global),
                pct(r.analyzed_per_core),
                r.racy_vars_global.to_string(),
                r.racy_vars_per_core.to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "workload",
            "speedup (global)",
            "speedup (per-core)",
            "analyzed (global)",
            "analyzed (per-core)",
            "racy vars (global)",
            "racy vars (per-core)",
        ],
        &table,
    );
    save_json("exp_a4_scope", &rows);
}
