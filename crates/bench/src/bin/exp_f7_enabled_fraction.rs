//! Experiment F7 — analysis residency.
//!
//! For demand-driven (HITM) runs: the fraction of execution cycles spent
//! with analysis enabled, the fraction of accesses analyzed, and the
//! number of enable/disable transitions. This is the mechanism view of
//! F4/F5: speedups come precisely from low residency.

use ddrace_bench::{pct, print_table, run_matrix, save_json, ExpContext};
use ddrace_core::AnalysisMode;
use ddrace_workloads::all_benchmarks;

fn main() {
    let ctx = ExpContext::from_env();
    println!(
        "F7: analysis residency under demand-HITM (scale {:?})\n",
        ctx.scale
    );
    let specs = all_benchmarks();
    let rows = run_matrix(&ctx, &specs, &[AnalysisMode::demand_hitm()]);

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|row| {
            let r = &row.runs[0];
            let ctrl = r.controller.expect("demand mode has controller stats");
            vec![
                row.name.clone(),
                row.suite.clone(),
                pct(r.enabled_cycle_fraction()),
                pct(r.analyzed_fraction()),
                ctrl.enables.to_string(),
                ctrl.disables.to_string(),
                r.pmis.to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "benchmark",
            "suite",
            "cycles enabled",
            "accesses analyzed",
            "enables",
            "disables",
            "PMIs",
        ],
        &table,
    );
    save_json("exp_f7_enabled_fraction", &rows);
}
