//! Substrate perf trajectory: measures the hot-path rewrites (run-queue
//! scheduler, open-addressed shadow memory, epoch-inline fast path)
//! against **live pre-change baselines** and emits the machine-readable
//! `BENCH_substrate.json` at the repo root.
//!
//! The baselines are not stored numbers: the legacy scheduler picker
//! still exists behind [`PickStrategy::LegacyScan`], and the pre-change
//! FastTrack / sharing-tracker hot paths (std `HashMap` shadow storage,
//! cloned vector clock per check) are vendored below from version
//! control, so every run re-measures before *and* after on the same
//! machine.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p ddrace-bench --bin bench_substrate            # full run, writes JSON
//! cargo run -p ddrace-bench --bin bench_substrate -- --smoke          # tiny sizes, no JSON (CI)
//! ```
//!
//! `DDRACE_BENCH_OUT` overrides the output path. Debug builds are
//! tagged `"build": "debug"` in the JSON (and additionally pay the
//! scheduler's per-pick `debug_assert` cross-check, which runs *both*
//! pickers), so acceptance numbers should come from `--release`.

use criterion::{measure, Measurement};
use ddrace_cache::CoreId;
use ddrace_detector::{DetectorConfig, FastTrack, RaceDetector};
use ddrace_json::Value;
use ddrace_program::{
    run_program, AccessKind, Addr, BarrierId, Event, NullListener, Op, PickStrategy, Program,
    Scheduler, SchedulerConfig, StartMode, ThreadId,
};
use ddrace_workloads::{phoenix, Scale};

/// The pre-optimization detector and sharing-tracker hot paths, vendored
/// from version control so the "before" side of every delta is measured
/// live instead of trusted from a file.
mod legacy {
    use ddrace_detector::{
        AccessReport, DetectorConfig, DetectorStats, Epoch, Granularity, HbClocks, RaceAccess,
        RaceKind, RaceReport, RaceReportSet, VectorClock,
    };
    use ddrace_program::{AccessKind, Addr, BarrierId, Op, ThreadId};
    use std::collections::HashMap;

    #[derive(Debug, Clone, PartialEq, Eq)]
    enum ReadState {
        Epoch(Epoch),
        Vc(VectorClock),
    }

    #[derive(Debug, Clone, PartialEq, Eq)]
    struct VarState {
        write: Epoch,
        read: ReadState,
    }

    impl VarState {
        fn fresh() -> Self {
            VarState {
                write: Epoch::ZERO,
                read: ReadState::Epoch(Epoch::ZERO),
            }
        }
    }

    /// The pre-change FastTrack: `HashMap` shadow storage and a cloned
    /// vector clock at the top of every access check.
    #[derive(Debug, Clone)]
    pub struct LegacyFastTrack {
        clocks: HbClocks,
        shadow: HashMap<u64, VarState>,
        reports: RaceReportSet,
        stats: DetectorStats,
        granularity: Granularity,
        max_reports: usize,
    }

    impl LegacyFastTrack {
        pub fn new(config: DetectorConfig) -> Self {
            LegacyFastTrack {
                clocks: HbClocks::new(),
                shadow: HashMap::new(),
                reports: RaceReportSet::new(),
                stats: DetectorStats::default(),
                granularity: config.granularity,
                max_reports: config.max_reports,
            }
        }

        pub fn races_observed(&self) -> u64 {
            self.stats.races_observed
        }

        pub fn on_thread_start(&mut self, tid: ThreadId, parent: Option<ThreadId>) {
            self.clocks.on_thread_start(tid, parent);
        }

        pub fn on_thread_finish(&mut self, tid: ThreadId) {
            self.clocks.on_thread_finish(tid);
        }

        pub fn on_sync(&mut self, tid: ThreadId, op: &Op) {
            if op.is_sync() {
                self.stats.sync_ops += 1;
            }
            self.clocks.on_sync(tid, op);
        }

        pub fn on_barrier_release(&mut self, barrier: BarrierId, participants: &[ThreadId]) {
            self.clocks.on_barrier_release(barrier, participants);
        }

        pub fn on_access(&mut self, tid: ThreadId, addr: Addr, kind: AccessKind) -> AccessReport {
            self.stats.accesses_checked += 1;
            let key = self.granularity.key(addr);
            match kind {
                AccessKind::Read => self.check_read(tid, addr, key),
                AccessKind::Write | AccessKind::AtomicRmw => self.check_write(tid, addr, key),
            }
        }

        fn record(&mut self, report: RaceReport) {
            self.stats.races_observed += 1;
            if self.reports.distinct() < self.max_reports {
                self.reports.record(report);
            } else {
                self.reports.merge_only(&report);
            }
        }

        fn check_read(&mut self, tid: ThreadId, addr: Addr, key: u64) -> AccessReport {
            let tvc = self.clocks.thread(tid).clone();
            let e = Epoch::of(tid, &tvc);
            let var = self.shadow.entry(key).or_insert_with(VarState::fresh);

            if let ReadState::Epoch(r) = var.read {
                if r == e {
                    self.stats.fast_path_hits += 1;
                    let shared = !var.write.is_zero() && var.write.tid != tid;
                    return AccessReport {
                        race: false,
                        shared,
                    };
                }
            }

            let shared = (!var.write.is_zero() && var.write.tid != tid)
                || match &var.read {
                    ReadState::Epoch(r) => !r.is_zero() && r.tid != tid,
                    ReadState::Vc(_) => true,
                };

            let race = if !var.write.visible_to(&tvc) {
                let prior = var.write;
                Some(RaceReport {
                    addr,
                    shadow_key: key,
                    kind: RaceKind::WriteRead,
                    prior: RaceAccess {
                        tid: prior.tid,
                        kind: AccessKind::Write,
                        clock: prior.clock,
                    },
                    current: RaceAccess {
                        tid,
                        kind: AccessKind::Read,
                        clock: e.clock,
                    },
                })
            } else {
                None
            };

            match &mut var.read {
                ReadState::Epoch(r) => {
                    if r.visible_to(&tvc) {
                        *r = e;
                    } else {
                        let mut vc = VectorClock::new();
                        vc.set(r.tid, r.clock);
                        vc.set(tid, e.clock);
                        var.read = ReadState::Vc(vc);
                        self.stats.escalations += 1;
                    }
                }
                ReadState::Vc(vc) => vc.set(tid, e.clock),
            }

            let raced = race.is_some();
            if let Some(report) = race {
                self.record(report);
            }
            AccessReport {
                race: raced,
                shared,
            }
        }

        fn check_write(&mut self, tid: ThreadId, addr: Addr, key: u64) -> AccessReport {
            let tvc = self.clocks.thread(tid).clone();
            let e = Epoch::of(tid, &tvc);
            let var = self.shadow.entry(key).or_insert_with(VarState::fresh);

            if var.write == e {
                self.stats.fast_path_hits += 1;
                return AccessReport {
                    race: false,
                    shared: false,
                };
            }

            let shared = (!var.write.is_zero() && var.write.tid != tid)
                || match &var.read {
                    ReadState::Epoch(r) => !r.is_zero() && r.tid != tid,
                    ReadState::Vc(_) => true,
                };

            let race = if !var.write.visible_to(&tvc) {
                Some(RaceReport {
                    addr,
                    shadow_key: key,
                    kind: RaceKind::WriteWrite,
                    prior: RaceAccess {
                        tid: var.write.tid,
                        kind: AccessKind::Write,
                        clock: var.write.clock,
                    },
                    current: RaceAccess {
                        tid,
                        kind: AccessKind::Write,
                        clock: e.clock,
                    },
                })
            } else {
                match &var.read {
                    ReadState::Epoch(r) if !r.visible_to(&tvc) => Some(RaceReport {
                        addr,
                        shadow_key: key,
                        kind: RaceKind::ReadWrite,
                        prior: RaceAccess {
                            tid: r.tid,
                            kind: AccessKind::Read,
                            clock: r.clock,
                        },
                        current: RaceAccess {
                            tid,
                            kind: AccessKind::Write,
                            clock: e.clock,
                        },
                    }),
                    ReadState::Vc(vc) => vc.first_excess(&tvc).map(|witness| RaceReport {
                        addr,
                        shadow_key: key,
                        kind: RaceKind::ReadWrite,
                        prior: RaceAccess {
                            tid: witness,
                            kind: AccessKind::Read,
                            clock: vc.get(witness),
                        },
                        current: RaceAccess {
                            tid,
                            kind: AccessKind::Write,
                            clock: e.clock,
                        },
                    }),
                    _ => None,
                }
            };

            var.write = e;
            if matches!(var.read, ReadState::Vc(_)) {
                var.read = ReadState::Epoch(Epoch::ZERO);
            }

            let raced = race.is_some();
            if let Some(report) = race {
                self.record(report);
            }
            AccessReport {
                race: raced,
                shared,
            }
        }
    }

    /// The pre-change sharing tracker: identical classification logic over
    /// a std `HashMap` instead of the open-addressed shadow table.
    #[derive(Debug, Clone, Copy, Default)]
    struct LineHistory {
        last_writer: Option<ddrace_cache::CoreId>,
        readers_since_write: u64,
    }

    #[derive(Debug, Clone, Default)]
    pub struct LegacySharingTracker {
        lines: HashMap<u64, LineHistory>,
        total: u64,
    }

    impl LegacySharingTracker {
        pub fn new() -> Self {
            Self::default()
        }

        pub fn total(&self) -> u64 {
            self.total
        }

        pub fn on_read(&mut self, core: ddrace_cache::CoreId, line: u64) {
            let h = self.lines.entry(line).or_default();
            let bit = 1u64 << core.index();
            let fresh = h.readers_since_write & bit == 0;
            h.readers_since_write |= bit;
            if matches!(h.last_writer, Some(w) if w != core && fresh) {
                self.total += 1;
            }
        }

        pub fn on_write(&mut self, core: ddrace_cache::CoreId, line: u64) {
            let h = self.lines.entry(line).or_default();
            let bit = 1u64 << core.index();
            if matches!(h.last_writer, Some(w) if w != core) {
                self.total += 1;
            }
            if h.readers_since_write & !bit != 0 {
                self.total += 1;
            }
            h.last_writer = Some(core);
            h.readers_since_write = 0;
        }
    }
}

/// A rare (non-access) captured scheduler event.
enum Control {
    Start(ThreadId, Option<ThreadId>),
    Finish(ThreadId),
    Release(BarrierId, Vec<ThreadId>),
    Sync(ThreadId, Op),
}

const ACCESS_BIT: u64 = 1 << 63;
const WRITE_BIT: u64 = 1 << 62;
const ADDR_MASK: u64 = (1 << 56) - 1;

/// One captured run, packed for replay. Accesses — the overwhelming
/// majority of events — are one `u64` word each (flag bits + tid + addr)
/// so that walking the stream costs almost nothing next to the detector
/// work being measured; rare control events indirect into a side table.
/// Both detector variants replay the identical stream, so any residual
/// walk cost cancels out of the speedup.
struct EventStream {
    words: Vec<u64>,
    control: Vec<Control>,
    accesses: u64,
}

impl EventStream {
    fn push_control(&mut self, c: Control) {
        self.words.push(self.control.len() as u64);
        self.control.push(c);
    }
}

/// Captures one run of `program` into `stream`, routed exactly as the
/// simulator routes ops (reads/writes are checked accesses;
/// lock/barrier/semaphore/fork/join/RMW ops are sync events).
fn capture_events(program: Program, config: SchedulerConfig, stream: &mut EventStream) {
    let pack = |tid: ThreadId, addr: Addr, write: bool| {
        assert!(tid.0 < 64 && addr.0 <= ADDR_MASK, "access fits packed word");
        ACCESS_BIT | if write { WRITE_BIT } else { 0 } | (u64::from(tid.0) << 56) | addr.0
    };
    let mut listener = |event: Event<'_>| match event {
        Event::ThreadStarted { tid, parent } => stream.push_control(Control::Start(tid, parent)),
        Event::ThreadFinished { tid } => stream.push_control(Control::Finish(tid)),
        Event::BarrierReleased {
            barrier,
            participants,
        } => stream.push_control(Control::Release(barrier, participants.to_vec())),
        Event::Op { tid, op } => match op {
            Op::Read { addr } => {
                stream.accesses += 1;
                stream.words.push(pack(tid, addr, false));
            }
            Op::Write { addr } => {
                stream.accesses += 1;
                stream.words.push(pack(tid, addr, true));
            }
            Op::Compute { .. } => {}
            _ => stream.push_control(Control::Sync(tid, op)),
        },
    };
    run_program(program, config, &mut listener).expect("workload program must schedule");
}

/// The callback surface replay drives — implemented by both detector
/// variants so they replay the identical stream through identical code.
trait ReplayTarget {
    fn access(&mut self, tid: ThreadId, addr: Addr, kind: AccessKind);
    fn control(&mut self, c: &Control);
}

impl ReplayTarget for FastTrack {
    fn access(&mut self, tid: ThreadId, addr: Addr, kind: AccessKind) {
        self.on_access(tid, addr, kind);
    }
    fn control(&mut self, c: &Control) {
        match c {
            Control::Start(tid, parent) => self.on_thread_start(*tid, *parent),
            Control::Finish(tid) => self.on_thread_finish(*tid),
            Control::Release(barrier, parts) => self.on_barrier_release(*barrier, parts),
            Control::Sync(tid, op) => self.on_sync(*tid, op),
        }
    }
}

impl ReplayTarget for legacy::LegacyFastTrack {
    fn access(&mut self, tid: ThreadId, addr: Addr, kind: AccessKind) {
        self.on_access(tid, addr, kind);
    }
    fn control(&mut self, c: &Control) {
        match c {
            Control::Start(tid, parent) => self.on_thread_start(*tid, *parent),
            Control::Finish(tid) => self.on_thread_finish(*tid),
            Control::Release(barrier, parts) => self.on_barrier_release(*barrier, parts),
            Control::Sync(tid, op) => self.on_sync(*tid, op),
        }
    }
}

fn replay<T: ReplayTarget>(stream: &EventStream, d: &mut T) {
    for &w in &stream.words {
        if w & ACCESS_BIT != 0 {
            let tid = ThreadId(((w >> 56) & 0x3F) as u32);
            let kind = if w & WRITE_BIT != 0 {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            d.access(tid, Addr(w & ADDR_MASK), kind);
        } else {
            d.control(&stream.control[w as usize]);
        }
    }
}

fn replay_fasttrack(stream: &EventStream) -> u64 {
    let mut d = FastTrack::new(DetectorConfig::default());
    replay(stream, &mut d);
    d.stats().races_observed
}

fn replay_legacy(stream: &EventStream) -> u64 {
    let mut d = legacy::LegacyFastTrack::new(DetectorConfig::default());
    replay(stream, &mut d);
    d.races_observed()
}

/// The 64-thread straggler: every thread but one finishes immediately, so
/// steady-state picking must skip 63 dead threads per op. This is the
/// run-queue's worst case for the legacy scan (O(threads) per pick) and
/// the shape barrier stragglers and lock convoys produce in campaigns.
fn straggler_threads(threads: usize, straggler_ops: usize) -> Vec<Vec<Op>> {
    (0..threads)
        .map(|t| {
            let ops = if t == 0 { straggler_ops } else { 1 };
            (0..ops)
                .map(|i| Op::Read {
                    addr: Addr(0x1000 + (t as u64) * 0x10_0000 + ((i as u64) % 512) * 8),
                })
                .collect()
        })
        .collect()
}

/// The dense counterpart: all 64 threads stay runnable, so the legacy
/// scan finds its victim on the first probe. Recorded so the JSON shows
/// the run-queue is not *slower* when the old picker was already O(1).
fn dense_threads(threads: usize, ops_per_thread: usize) -> Vec<Vec<Op>> {
    (0..threads)
        .map(|t| {
            (0..ops_per_thread)
                .map(|i| Op::Read {
                    addr: Addr(0x1000 + (t as u64) * 0x10_0000 + ((i as u64) % 512) * 8),
                })
                .collect()
        })
        .collect()
}

fn run_scheduler(threads: &[Vec<Op>], strategy: PickStrategy) -> u64 {
    let program = Program::from_thread_vecs(threads.to_vec(), StartMode::AllStart);
    let config = SchedulerConfig {
        quantum: 1,
        seed: 7,
        jitter: false,
    };
    Scheduler::new(program, config)
        .with_pick_strategy(strategy)
        .run(&mut NullListener)
        .expect("bench program must schedule")
        .ops_executed
}

/// Deterministic synthetic line-access stream for the sharing trackers:
/// 8 cores, a mix of core-private working sets and a small contended
/// shared region (the HITM-producing shape the indicator cares about).
fn sharing_stream(events: usize) -> Vec<(CoreId, u64, bool)> {
    (0..events)
        .map(|i| {
            let core = CoreId((i % 8) as u32);
            if i % 4 == 0 {
                // Contended region: 64 lines ping-ponged by all cores.
                (core, 1_000 + ((i / 4) % 64) as u64, i % 8 == 0)
            } else {
                // Private region: per-core 512-line working set.
                let base = 10_000 + u64::from(core.0) * 10_000;
                (core, base + ((i / 4) % 512) as u64, i % 3 == 0)
            }
        })
        .collect()
}

fn measurement_json(m: &Measurement) -> Value {
    Value::Object(vec![
        ("median_ns".to_string(), Value::UInt(m.median_ns)),
        ("elements".to_string(), Value::UInt(m.elements)),
        ("per_sec".to_string(), Value::Float(m.per_sec())),
    ])
}

/// `{before, after, speedup}` — the delta schema every section uses.
fn delta_json(before: &Measurement, after: &Measurement) -> Value {
    Value::Object(vec![
        ("before".to_string(), measurement_json(before)),
        ("after".to_string(), measurement_json(after)),
        (
            "speedup".to_string(),
            Value::Float(after.per_sec() / before.per_sec()),
        ),
    ])
}

fn main() {
    let smoke =
        std::env::args().any(|a| a == "--smoke") || std::env::var("DDRACE_BENCH_SMOKE").is_ok();
    let samples = if smoke { 2 } else { 7 };

    // ---- Scheduler: run-queue vs legacy scan at 64 simulated threads ----
    let threads = 64usize;
    let straggler_ops = if smoke { 2_000 } else { 200_000 };
    let dense_ops = if smoke { 64 } else { 2_000 };

    let straggler = straggler_threads(threads, straggler_ops);
    let dense = dense_threads(threads, dense_ops);
    let straggler_steps = run_scheduler(&straggler, PickStrategy::RunQueue);
    assert_eq!(
        straggler_steps,
        run_scheduler(&straggler, PickStrategy::LegacyScan),
        "pickers must execute the same schedule"
    );
    let dense_steps = run_scheduler(&dense, PickStrategy::RunQueue);

    println!("scheduler ({threads} threads, quantum 1)");
    let sched_straggler_queue = measure("straggler/run_queue", straggler_steps, samples, || {
        run_scheduler(&straggler, PickStrategy::RunQueue)
    });
    println!("{}", sched_straggler_queue.line());
    let sched_straggler_scan = measure("straggler/legacy_scan", straggler_steps, samples, || {
        run_scheduler(&straggler, PickStrategy::LegacyScan)
    });
    println!("{}", sched_straggler_scan.line());
    let sched_dense_queue = measure("dense/run_queue", dense_steps, samples, || {
        run_scheduler(&dense, PickStrategy::RunQueue)
    });
    println!("{}", sched_dense_queue.line());
    let sched_dense_scan = measure("dense/legacy_scan", dense_steps, samples, || {
        run_scheduler(&dense, PickStrategy::LegacyScan)
    });
    println!("{}", sched_dense_scan.line());

    // ---- Detector: shadow-table FastTrack vs vendored legacy on exp_f4's
    // Phoenix mix ----
    let scale = if smoke { Scale::TEST } else { Scale::SMALL };
    let sched_config = SchedulerConfig {
        quantum: 32,
        seed: 42,
        jitter: true,
    };
    let mut events = EventStream {
        words: Vec::new(),
        control: Vec::new(),
        accesses: 0,
    };
    for spec in phoenix::suite() {
        capture_events(spec.program(scale, 42), sched_config, &mut events);
    }
    let accesses = events.accesses;
    assert_eq!(
        replay_fasttrack(&events),
        replay_legacy(&events),
        "both detectors must observe the same races"
    );

    println!("detector (phoenix mix, {accesses} accesses)");
    let det_after = measure("fasttrack/shadow_table", accesses, samples, || {
        replay_fasttrack(&events)
    });
    println!("{}", det_after.line());
    let det_before = measure("fasttrack/legacy_hashmap", accesses, samples, || {
        replay_legacy(&events)
    });
    println!("{}", det_before.line());

    // ---- Cache: sharing tracker shadow-table vs legacy HashMap ----
    let sharing_events = if smoke { 4_000 } else { 400_000 };
    let stream = sharing_stream(sharing_events);
    let run_sharing = |stream: &[(CoreId, u64, bool)]| {
        let mut t = ddrace_cache::SharingTracker::new();
        for &(core, line, write) in stream {
            if write {
                t.on_write(core, line);
            } else {
                t.on_read(core, line);
            }
        }
        t.counts().total()
    };
    let run_sharing_legacy = |stream: &[(CoreId, u64, bool)]| {
        let mut t = legacy::LegacySharingTracker::new();
        for &(core, line, write) in stream {
            if write {
                t.on_write(core, line);
            } else {
                t.on_read(core, line);
            }
        }
        t.total()
    };
    assert_eq!(
        run_sharing(&stream),
        run_sharing_legacy(&stream),
        "both trackers must classify the same sharing events"
    );

    println!("cache sharing tracker ({sharing_events} line events)");
    let cache_after = measure(
        "sharing_tracker/shadow_table",
        sharing_events as u64,
        samples,
        || run_sharing(&stream),
    );
    println!("{}", cache_after.line());
    let cache_before = measure(
        "sharing_tracker/legacy_hashmap",
        sharing_events as u64,
        samples,
        || run_sharing_legacy(&stream),
    );
    println!("{}", cache_before.line());

    // ---- Summary + JSON ----
    let sched_speedup = sched_straggler_queue.per_sec() / sched_straggler_scan.per_sec();
    let det_speedup = det_after.per_sec() / det_before.per_sec();
    let cache_speedup = cache_after.per_sec() / cache_before.per_sec();
    println!("scheduler straggler speedup: {sched_speedup:.2}x (target >= 3)");
    println!("detector speedup:            {det_speedup:.2}x (target >= 2)");
    println!("sharing tracker speedup:     {cache_speedup:.2}x");

    if smoke {
        println!("smoke mode: skipping BENCH_substrate.json");
        return;
    }

    let doc = Value::Object(vec![
        ("bench".to_string(), Value::Str("substrate".to_string())),
        (
            "build".to_string(),
            Value::Str(
                if cfg!(debug_assertions) {
                    "debug"
                } else {
                    "release"
                }
                .to_string(),
            ),
        ),
        (
            "scheduler".to_string(),
            Value::Object(vec![
                ("threads".to_string(), Value::UInt(threads as u64)),
                ("quantum".to_string(), Value::UInt(1)),
                (
                    "straggler".to_string(),
                    delta_json(&sched_straggler_scan, &sched_straggler_queue),
                ),
                (
                    "dense".to_string(),
                    delta_json(&sched_dense_scan, &sched_dense_queue),
                ),
            ]),
        ),
        (
            "detector".to_string(),
            Value::Object(vec![
                (
                    "workloads".to_string(),
                    Value::Str("phoenix suite (exp_f4 mix)".to_string()),
                ),
                ("accesses".to_string(), Value::UInt(accesses)),
                ("delta".to_string(), delta_json(&det_before, &det_after)),
            ]),
        ),
        (
            "cache".to_string(),
            Value::Object(vec![
                (
                    "sharing_events".to_string(),
                    Value::UInt(sharing_events as u64),
                ),
                (
                    "sharing_tracker".to_string(),
                    delta_json(&cache_before, &cache_after),
                ),
            ]),
        ),
        (
            "acceptance".to_string(),
            Value::Object(vec![
                (
                    "scheduler_straggler_speedup".to_string(),
                    Value::Float(sched_speedup),
                ),
                ("scheduler_target".to_string(), Value::Float(3.0)),
                ("detector_speedup".to_string(), Value::Float(det_speedup)),
                ("detector_target".to_string(), Value::Float(2.0)),
                (
                    "pass".to_string(),
                    Value::Bool(sched_speedup >= 3.0 && det_speedup >= 2.0),
                ),
            ]),
        ),
    ]);

    let out = std::env::var("DDRACE_BENCH_OUT").unwrap_or_else(|_| "BENCH_substrate.json".into());
    let body = ddrace_json::to_string_pretty(&doc).expect("bench document serializes");
    std::fs::write(&out, body + "\n").expect("write bench output");
    println!("wrote {out}");
}
