//! Trace-ingest throughput: the block-framed v2 format with slab decode
//! and the pipelined decode→detect engine against the v1
//! read-everything-then-replay path, emitting the machine-readable
//! `BENCH_trace.json` at the repo root.
//!
//! The baseline is not a stored number: the v1 flat format and the
//! materialising ingest path (`read_trace_file` → `validate_exec` →
//! `exec_trace` → `run_trace`) both still exist, so every run re-measures
//! before *and* after on the same machine. All ingest modes replay the
//! identical record stream and their full [`RunResult`]s — racy reports
//! included — are asserted equal before any timing.
//!
//! The synthetic corpus is the shape demand-driven replay sees in the
//! wild: eight threads hammering private hot words at wide (heap-like,
//! multi-byte-varint) addresses, with two of them sharing one hot word
//! rarely enough that analysis stays off for the bulk of the stream but
//! a real race is planted for the equivalence gate to agree on.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p ddrace-bench --bin bench_trace          # full run, writes JSON
//! cargo run -p ddrace-bench --bin bench_trace -- --smoke         # tiny sizes, no JSON (CI)
//! ```
//!
//! `DDRACE_BENCH_OUT` overrides the output path (and, in smoke mode,
//! opts into writing the JSON at smoke sizes so CI can check the
//! schema). Debug builds are tagged `"build": "debug"`; acceptance
//! numbers come from `--release`.

use criterion::{measure_paired, Measurement};
use ddrace_core::{AnalysisMode, IngestEngine, RunResult, SimConfig, Simulation};
use ddrace_json::Value;
use ddrace_program::{Addr, Op, ThreadId, TraceEvent};
use ddrace_trace::{exec_trace, validate_exec, FormatVersion, TraceMeta, TraceRecord};
use std::path::PathBuf;

/// Simulated threads in the synthetic trace (one per simulated core, so
/// sharing between two of them is cross-core and HITM-visible).
const THREADS: u32 = 8;

/// Per-thread hot working set, in words. Small enough to stay L1-hot —
/// replay cost is decode plus cheap cache hits, the demand-mode steady
/// state — while the wide base addresses below keep varints long.
const HOT_WORDS: u64 = 64;

/// Ops each thread runs back-to-back before the stream rotates to the
/// next thread, mimicking a scheduler quantum.
const CHUNK: u64 = 256;

/// Ops at the start of each of threads 0/1's first two chunks spent
/// hammering the shared word. The first chunk's HITMs enable analysis;
/// the second chunk's writes land inside the controller's cooldown
/// while it is still on, so the write/write race is always detected —
/// after which the stream is sharing-free and analysis switches off for
/// the bulk of the replay (the demand-driven steady state).
const RACY_WINDOW: u64 = 64;

/// The deliberately shared (and racy) word.
const SHARED: Addr = Addr(0x40);

fn op(tid: u32, op: Op) -> TraceRecord {
    TraceRecord::Exec(TraceEvent::Op {
        tid: ThreadId(tid),
        op,
    })
}

/// Builds the synthetic record stream: fork all workers, run
/// `total_ops` memory operations in rotating per-thread chunks, join
/// and finish everyone.
fn synth_records(total_ops: u64) -> Vec<TraceRecord> {
    let mut records = Vec::with_capacity(total_ops as usize + 4 * THREADS as usize);
    records.push(TraceRecord::Exec(TraceEvent::ThreadStarted {
        tid: ThreadId(0),
        parent: None,
    }));
    for t in 1..THREADS {
        records.push(op(0, Op::Fork { child: ThreadId(t) }));
        records.push(TraceRecord::Exec(TraceEvent::ThreadStarted {
            tid: ThreadId(t),
            parent: Some(ThreadId(0)),
        }));
    }
    let per_thread = total_ops / u64::from(THREADS);
    let mut emitted = [0u64; THREADS as usize];
    'outer: loop {
        for t in 0..THREADS {
            let done = &mut emitted[t as usize];
            if *done >= per_thread {
                if t == THREADS - 1 {
                    break 'outer;
                }
                continue;
            }
            let end = (*done + CHUNK).min(per_thread);
            for i in *done..end {
                // Wide heap-like addresses: 5-byte varints on the wire.
                let base = (u64::from(t) + 1) << 33;
                let record = if t < 2 && i < 2 * CHUNK && i % CHUNK < RACY_WINDOW {
                    // The planted unsynchronized sharing: thread 0
                    // keeps the line modified, thread 1's loads are the
                    // HITMs the demand indicator counts (write RFOs are
                    // excluded by the default indicator).
                    if t == 0 || i % 2 == 1 {
                        op(t, Op::Write { addr: SHARED })
                    } else {
                        op(t, Op::Read { addr: SHARED })
                    }
                } else {
                    // Store-reload pair on the hot set, then computation
                    // over what was loaded — the op mix PMU-sampled
                    // recordings of real kernels produce, where most
                    // records are not memory accesses.
                    match i % 32 {
                        0 => op(
                            t,
                            Op::Write {
                                addr: Addr(base + ((i / 32) % HOT_WORDS) * 8),
                            },
                        ),
                        1 => op(
                            t,
                            Op::Read {
                                addr: Addr(base + ((i / 32) % HOT_WORDS) * 8),
                            },
                        ),
                        _ => op(
                            t,
                            Op::Compute {
                                cycles: 0x1000_0000 | (i as u32 & 0xffff),
                            },
                        ),
                    }
                };
                records.push(record);
            }
            *done = end;
        }
    }
    for t in 1..THREADS {
        records.push(TraceRecord::Exec(TraceEvent::ThreadFinished {
            tid: ThreadId(t),
        }));
        records.push(op(0, Op::Join { child: ThreadId(t) }));
    }
    records.push(TraceRecord::Exec(TraceEvent::ThreadFinished {
        tid: ThreadId(0),
    }));
    records
}

fn sim() -> Simulation {
    Simulation::new(SimConfig::new(
        THREADS as usize,
        AnalysisMode::demand_hitm(),
    ))
}

/// The pre-v2 ingest path, kept measurable: decode the whole file into
/// a record vector, validate it, strip to an exec trace, replay.
fn v1_serial(path: &PathBuf) -> RunResult {
    let (_, records) = ddrace_trace::read_trace_file(path).expect("v1 trace decodes");
    validate_exec(&records).expect("v1 trace validates");
    sim().run_trace(&exec_trace(&records))
}

fn streamed(path: &PathBuf, engine: IngestEngine) -> RunResult {
    ddrace_core::ingest_path(&sim(), path, engine).expect("trace ingests")
}

fn measurement_json(m: &Measurement) -> Value {
    Value::Object(vec![
        ("median_ns".to_string(), Value::UInt(m.median_ns)),
        ("elements".to_string(), Value::UInt(m.elements)),
        ("events_per_sec".to_string(), Value::Float(m.per_sec())),
    ])
}

struct Row {
    events: u64,
    bytes_v1: u64,
    bytes_v2: u64,
    v1_serial: Measurement,
    v2_slab: Measurement,
    v2_pipelined: Measurement,
}

fn main() {
    let smoke =
        std::env::args().any(|a| a == "--smoke") || std::env::var("DDRACE_BENCH_SMOKE").is_ok();
    let samples = if smoke { 2 } else { 5 };
    let sizes: &[u64] = if smoke {
        &[4_096, 16_384]
    } else {
        &[65_536, 524_288, 2_097_152]
    };

    let dir = std::env::temp_dir().join(format!("ddrace-bench-trace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create bench scratch dir");

    let mut rows: Vec<Row> = Vec::new();
    for &size in sizes {
        let records = synth_records(size);
        let events = records.len() as u64;
        let meta = TraceMeta {
            source: "bench".to_string(),
            label: format!("synth-{size}"),
            seed: 7,
            fingerprint: size,
        };
        let path_v1 = dir.join(format!("synth-{size}-v1.ddt"));
        let path_v2 = dir.join(format!("synth-{size}-v2.ddt"));
        ddrace_trace::write_trace_file_with(&path_v1, &meta, &records, FormatVersion::V1)
            .expect("write v1 trace");
        ddrace_trace::write_trace_file_with(&path_v2, &meta, &records, FormatVersion::V2)
            .expect("write v2 trace");
        let bytes_v1 = std::fs::metadata(&path_v1).unwrap().len();
        let bytes_v2 = std::fs::metadata(&path_v2).unwrap().len();

        // Equivalence gate before any timing: every (format, engine)
        // pair must produce the same full result — races, cycle counts,
        // timeline, everything — and it must contain the planted race.
        let baseline = v1_serial(&path_v1);
        assert!(
            baseline.races.distinct >= 1,
            "synthetic trace must contain the planted race at {size} ops"
        );
        for (label, result) in [
            ("v1/serial", streamed(&path_v1, IngestEngine::Serial)),
            ("v1/pipelined", streamed(&path_v1, IngestEngine::Pipelined)),
            ("v2/serial", streamed(&path_v2, IngestEngine::Serial)),
            ("v2/pipelined", streamed(&path_v2, IngestEngine::Pipelined)),
        ] {
            assert_eq!(
                result, baseline,
                "{label} must equal the materialised v1 replay at {size} ops"
            );
        }

        println!("trace ingest ({events} events, v1 {bytes_v1} B, v2 {bytes_v2} B)");
        // Interleaved sampling: drift hits both sides of each pair
        // equally, so the ratios are stable run to run. The slab pair
        // and the acceptance pair each carry their own v1 baseline.
        let (_, v2_slab) = measure_paired(
            &format!("e{size}/v1_serial"),
            &format!("e{size}/v2_slab"),
            events,
            samples,
            || v1_serial(&path_v1).races.distinct,
            || streamed(&path_v2, IngestEngine::Serial).races.distinct,
        );
        let (v1, v2_pipelined) = measure_paired(
            &format!("e{size}/v1_serial"),
            &format!("e{size}/v2_pipelined"),
            events,
            samples,
            || v1_serial(&path_v1).races.distinct,
            || streamed(&path_v2, IngestEngine::Pipelined).races.distinct,
        );
        println!("{}", v1.line());
        println!("{}", v2_slab.line());
        println!("{}", v2_pipelined.line());
        rows.push(Row {
            events,
            bytes_v1,
            bytes_v2,
            v1_serial: v1,
            v2_slab,
            v2_pipelined,
        });
    }
    let _ = std::fs::remove_dir_all(&dir);

    let speedup = |row: &Row, m: &Measurement| m.per_sec() / row.v1_serial.per_sec();
    for row in &rows {
        println!(
            "{} events: v2-slab {:.2}x, v2-pipelined {:.2}x over v1-serial",
            row.events,
            speedup(row, &row.v2_slab),
            speedup(row, &row.v2_pipelined),
        );
    }
    let large = rows.last().expect("at least one size");
    let headline = speedup(large, &large.v2_pipelined);
    println!(
        "headline: v2-pipelined {headline:.2}x over v1-serial at {} events (target >= 4)",
        large.events
    );
    assert!(
        headline >= 1.0,
        "pipelined v2 ingest must never be slower than the materialised v1 path"
    );

    let out = std::env::var("DDRACE_BENCH_OUT");
    if smoke && out.is_err() {
        println!("smoke mode: skipping BENCH_trace.json");
        return;
    }

    let doc = Value::Object(vec![
        ("bench".to_string(), Value::Str("trace".to_string())),
        (
            "build".to_string(),
            Value::Str(
                if cfg!(debug_assertions) {
                    "debug"
                } else {
                    "release"
                }
                .to_string(),
            ),
        ),
        (
            "workload".to_string(),
            Value::Object(vec![
                ("threads".to_string(), Value::UInt(u64::from(THREADS))),
                ("hot_words".to_string(), Value::UInt(HOT_WORDS)),
                ("chunk".to_string(), Value::UInt(CHUNK)),
                ("racy_window".to_string(), Value::UInt(RACY_WINDOW)),
            ]),
        ),
        (
            "sizes".to_string(),
            Value::Array(
                rows.iter()
                    .map(|row| {
                        Value::Object(vec![
                            ("events".to_string(), Value::UInt(row.events)),
                            ("bytes_v1".to_string(), Value::UInt(row.bytes_v1)),
                            ("bytes_v2".to_string(), Value::UInt(row.bytes_v2)),
                            ("v1_serial".to_string(), measurement_json(&row.v1_serial)),
                            ("v2_slab".to_string(), measurement_json(&row.v2_slab)),
                            (
                                "v2_pipelined".to_string(),
                                measurement_json(&row.v2_pipelined),
                            ),
                            (
                                "speedup_slab".to_string(),
                                Value::Float(speedup(row, &row.v2_slab)),
                            ),
                            (
                                "speedup_pipelined".to_string(),
                                Value::Float(speedup(row, &row.v2_pipelined)),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "acceptance".to_string(),
            Value::Object(vec![
                ("speedup_large".to_string(), Value::Float(headline)),
                ("target".to_string(), Value::Float(4.0)),
                ("pass".to_string(), Value::Bool(headline >= 4.0)),
            ]),
        ),
    ]);

    let out = out.unwrap_or_else(|_| "BENCH_trace.json".into());
    let body = ddrace_json::to_string_pretty(&doc).expect("bench document serializes");
    std::fs::write(&out, body + "\n").expect("write bench output");
    println!("wrote {out}");
}
