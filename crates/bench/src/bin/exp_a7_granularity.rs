//! Experiment A7 — shadow-memory granularity ablation (extension).
//!
//! Shadow granularity is a core engineering decision in every race
//! detector: byte-precise shadowing catches everything and costs the
//! most memory; word granularity (our default, matching common tools) is
//! the usual compromise; line granularity saves memory but conflates
//! distinct variables on one cache line — false-sharing accesses get
//! reported as races. The two-word false-sharing kernel makes the trade
//! visible directly.

use ddrace_bench::{print_table, run_one_with, save_json, ExpContext};
use ddrace_core::{AnalysisMode, Simulation};
use ddrace_detector::Granularity;
use ddrace_program::{Program, ProgramBuilder, ThreadId};
use ddrace_workloads::racy;

#[derive(Debug)]
struct GranRow {
    workload: String,
    granularity: String,
    racy_vars: usize,
    distinct_reports: usize,
    shadow_accuracy_note: &'static str,
}
ddrace_json::json_struct!(@to GranRow { workload, granularity, racy_vars, distinct_reports, shadow_accuracy_note });

/// Two threads write *different* words of the same cache line, fully
/// fork/join ordered apart — a race-free program that only line-granular
/// shadowing flags.
fn false_sharing_kernel() -> Program {
    let mut b = ProgramBuilder::new();
    let line = b.alloc_shared(64);
    let t1 = b.add_thread();
    let t2 = b.add_thread();
    b.on(ThreadId::MAIN).fork(t1).fork(t2).join(t1).join(t2);
    let mut c1 = b.on(t1);
    for _ in 0..100 {
        c1 = c1.write(line.index(0)).read(line.index(0));
    }
    let _ = c1;
    let mut c2 = b.on(t2);
    for _ in 0..100 {
        c2 = c2.write(line.index(32)).read(line.index(32));
    }
    let _ = c2;
    b.build()
}

fn main() {
    let ctx = ExpContext::from_env();
    println!(
        "A7: shadow granularity vs reported races (scale {:?})\n",
        ctx.scale
    );

    let grans = [
        ("byte", Granularity::Byte),
        ("word", Granularity::Word),
        ("line", Granularity::Line),
    ];
    let mut rows = Vec::new();

    // A genuinely racy kernel: all granularities must flag it.
    let racy_spec = racy::unprotected_counter();
    for (label, g) in grans {
        let mut config = ctx.sim_config(AnalysisMode::Continuous);
        config.detector.granularity = g;
        let r = run_one_with(&ctx, &racy_spec, config);
        rows.push(GranRow {
            workload: racy_spec.name.clone(),
            granularity: label.to_string(),
            racy_vars: r.races.distinct_addresses,
            distinct_reports: r.races.distinct,
            shadow_accuracy_note: "true races: must be > 0 everywhere",
        });
    }

    // The race-free false-sharing kernel: only line granularity reports.
    for (label, g) in grans {
        let mut config = ctx.sim_config(AnalysisMode::Continuous);
        config.detector.granularity = g;
        let r = Simulation::new(config).run(false_sharing_kernel()).unwrap();
        rows.push(GranRow {
            workload: "false_sharing".to_string(),
            granularity: label.to_string(),
            racy_vars: r.races.distinct_addresses,
            distinct_reports: r.races.distinct,
            shadow_accuracy_note: "race-free: any report is a false positive",
        });
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.workload.clone(),
                r.granularity.clone(),
                r.racy_vars.to_string(),
                r.distinct_reports.to_string(),
                r.shadow_accuracy_note.to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "workload",
            "granularity",
            "racy vars",
            "distinct reports",
            "note",
        ],
        &table,
    );
    save_json("exp_a7_granularity", &rows);
}
