//! Experiment T1 — benchmark characterization table.
//!
//! For every benchmark: threads, executed memory/sync operation counts,
//! and the fraction of accesses that exhibit ground-truth inter-thread
//! sharing. This is the table that motivates the whole paper: the sharing
//! column is tiny for Phoenix and visibly larger for PARSEC.

use ddrace_bench::{pct, print_table, run_matrix, save_json, ExpContext};
use ddrace_core::AnalysisMode;
use ddrace_workloads::all_benchmarks;

fn main() {
    let ctx = ExpContext::from_env();
    println!(
        "T1: benchmark characterization (scale {:?}, seed {})\n",
        ctx.scale, ctx.seed
    );
    let specs = all_benchmarks();
    let rows = run_matrix(&ctx, &specs, &[AnalysisMode::Native]);

    let table: Vec<Vec<String>> = rows
        .iter()
        .zip(&specs)
        .map(|(row, spec)| {
            let r = &row.runs[0];
            vec![
                row.name.clone(),
                row.suite.clone(),
                spec.total_threads().to_string(),
                r.ops.memory_accesses().to_string(),
                r.ops.sync_ops().to_string(),
                r.cache.sharing.write_read.to_string(),
                r.cache.sharing.write_write.to_string(),
                r.cache.sharing.read_write.to_string(),
                pct(r.cache.sharing_fraction()),
            ]
        })
        .collect();
    print_table(
        &[
            "benchmark",
            "suite",
            "threads",
            "mem ops",
            "sync ops",
            "W→R",
            "W→W",
            "R→W",
            "shared frac",
        ],
        &table,
    );
    save_json("exp_t1_characterization", &rows);
}
