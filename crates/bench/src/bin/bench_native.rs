//! Native monitor throughput: the sharded, epoch-filtered shadow state
//! against the **live** legacy single-lock engine, on real OS threads,
//! emitting the machine-readable `BENCH_native.json` at the repo root.
//!
//! The baseline is not a stored number: the pre-change engine (one
//! global `Mutex<FastTrack>` around every hook) still exists behind
//! [`Monitor::legacy`], so every run re-measures before *and* after on
//! the same machine. Both engines run the identical workload and the
//! racy-key sets they report are asserted equal before any timing.
//!
//! The workload is the shape the sharded engine is built for: each
//! thread hammers a private hot working set (repeat same-epoch accesses,
//! served lock-free by the per-thread epoch filter), takes a shared lock
//! every few thousand operations (advancing its epoch and flushing the
//! filter), and — when there are at least two threads — lands one
//! deliberate unsynchronized write pair so the equivalence check has a
//! race to agree on.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p ddrace-bench --bin bench_native          # full run, writes JSON
//! cargo run -p ddrace-bench --bin bench_native -- --smoke         # tiny sizes, no JSON (CI)
//! ```
//!
//! `DDRACE_BENCH_OUT` overrides the output path (and, in smoke mode,
//! opts into writing the JSON at smoke sizes so CI can check the
//! schema). Debug builds are tagged `"build": "debug"`; acceptance
//! numbers come from `--release`.

use criterion::{measure_paired, Measurement};
use ddrace_detector::racy_keys;
use ddrace_json::Value;
use ddrace_native::{Monitor, ThreadToken};
use ddrace_program::Addr;
use std::sync::Arc;

/// Per-thread hot working set, in words. Small enough to sit entirely
/// in the epoch filter, large enough that the legacy engine's shadow
/// lookups don't degenerate to a single slot.
const HOT_WORDS: u64 = 64;

/// Accesses between lock round-trips. Each round-trip advances the
/// thread's epoch, so roughly one access in `SYNC_PERIOD / HOT_WORDS`
/// re-misses the filter — the demand-driven steady state.
const SYNC_PERIOD: usize = 16 * 1024;

/// The deliberately racy word (threads 0 and 1 write it unsynchronized).
const RACY: Addr = Addr(0x10);

/// `ops` accesses in write-then-read-thrice groups over the hot working
/// set (the store-then-reload shape of real hot loops), with a lock
/// round-trip every [`SYNC_PERIOD`] accesses. `ops` must be a multiple
/// of [`SYNC_PERIOD`].
fn worker(monitor: &Monitor, token: ThreadToken, idx: usize, ops: usize) {
    assert_eq!(ops % SYNC_PERIOD, 0);
    if idx < 2 {
        monitor.write(token, RACY);
    }
    let base = 0x1_0000u64 * (idx as u64 + 1);
    for round in 0..ops / SYNC_PERIOD {
        let first = round as u64;
        for word in first..first + (SYNC_PERIOD / 4) as u64 {
            let addr = Addr(base + (word % HOT_WORDS) * 8);
            monitor.write(token, addr);
            monitor.read(token, addr);
            monitor.read(token, addr);
            monitor.read(token, addr);
        }
        monitor.lock_acquired(token, 1);
        monitor.lock_released(token, 1);
    }
}

/// One full run: fork `threads` real OS threads off the root, drive the
/// workload, join them all, and return the monitor for inspection.
fn run_once(legacy: bool, threads: usize, ops_per_thread: usize) -> Arc<Monitor> {
    let (monitor, root) = if legacy {
        Monitor::legacy()
    } else {
        Monitor::new()
    };
    let tokens: Vec<ThreadToken> = (0..threads).map(|_| monitor.fork(root)).collect();
    std::thread::scope(|scope| {
        for (idx, &token) in tokens.iter().enumerate() {
            let monitor = &monitor;
            scope.spawn(move || worker(monitor, token, idx, ops_per_thread));
        }
    });
    for token in tokens {
        assert!(
            monitor.join(root, token),
            "join must succeed once per child"
        );
    }
    monitor
}

fn keys_of(monitor: &Monitor) -> Vec<u64> {
    racy_keys(&monitor.reports())
}

fn measurement_json(m: &Measurement) -> Value {
    Value::Object(vec![
        ("median_ns".to_string(), Value::UInt(m.median_ns)),
        ("elements".to_string(), Value::UInt(m.elements)),
        ("events_per_sec".to_string(), Value::Float(m.per_sec())),
    ])
}

fn delta_json(before: &Measurement, after: &Measurement) -> Value {
    Value::Object(vec![
        ("legacy".to_string(), measurement_json(before)),
        ("sharded".to_string(), measurement_json(after)),
        (
            "speedup".to_string(),
            Value::Float(after.per_sec() / before.per_sec()),
        ),
    ])
}

fn main() {
    let smoke =
        std::env::args().any(|a| a == "--smoke") || std::env::var("DDRACE_BENCH_SMOKE").is_ok();
    let samples = if smoke { 2 } else { 7 };
    // Per-thread, not total: every thread count runs the same per-thread
    // budget, so the fixed spawn/join cost is the same fraction of every
    // configuration's runtime instead of taxing the high-thread rows.
    let ops_per_thread: usize =
        (if smoke { 16_384 } else { 500_000 } / SYNC_PERIOD).max(1) * SYNC_PERIOD;
    let thread_counts = [1usize, 8, 64];

    let mut rows: Vec<(usize, u64, Measurement, Measurement)> = Vec::new();
    for &threads in &thread_counts {
        let events = (threads * ops_per_thread + threads.min(2)) as u64;

        // Equivalence gate before any timing: both engines must agree on
        // which shadow keys race under this workload.
        let legacy_keys = keys_of(&run_once(true, threads, ops_per_thread));
        let sharded_keys = keys_of(&run_once(false, threads, ops_per_thread));
        assert_eq!(
            legacy_keys, sharded_keys,
            "engines must report identical racy keys at {threads} threads"
        );
        let expected: Vec<u64> = if threads >= 2 {
            vec![RACY.0 >> 3]
        } else {
            vec![]
        };
        assert_eq!(
            sharded_keys, expected,
            "workload must race exactly on the planted word"
        );

        println!("native monitor ({threads} threads, {events} events)");
        // Interleaved sampling: CPU-frequency and load drift hit both
        // engines equally, so the speedup ratio is stable run to run.
        let (legacy, sharded) = measure_paired(
            &format!("t{threads}/legacy_single_lock"),
            &format!("t{threads}/sharded_filtered"),
            events,
            samples,
            || run_once(true, threads, ops_per_thread).race_count(),
            || run_once(false, threads, ops_per_thread).race_count(),
        );
        println!("{}", legacy.line());
        println!("{}", sharded.line());
        rows.push((threads, events, legacy, sharded));
    }

    let speedup_at = |threads: usize| -> f64 {
        let (_, _, legacy, sharded) = rows.iter().find(|r| r.0 == threads).unwrap();
        sharded.per_sec() / legacy.per_sec()
    };
    let (s1, s8, s64) = (speedup_at(1), speedup_at(8), speedup_at(64));
    println!("sharded speedup:  1 thread  {s1:.2}x");
    println!("sharded speedup:  8 threads {s8:.2}x (target >= 4)");
    println!("sharded speedup: 64 threads {s64:.2}x (target >= 4)");
    assert!(
        s8 >= 1.0 && s64 >= 1.0,
        "sharded engine must not be slower than the single lock at 8+ threads"
    );

    let out = std::env::var("DDRACE_BENCH_OUT");
    if smoke && out.is_err() {
        println!("smoke mode: skipping BENCH_native.json");
        return;
    }

    let doc = Value::Object(vec![
        ("bench".to_string(), Value::Str("native".to_string())),
        (
            "build".to_string(),
            Value::Str(
                if cfg!(debug_assertions) {
                    "debug"
                } else {
                    "release"
                }
                .to_string(),
            ),
        ),
        (
            "workload".to_string(),
            Value::Object(vec![
                ("hot_words".to_string(), Value::UInt(HOT_WORDS)),
                ("sync_period".to_string(), Value::UInt(SYNC_PERIOD as u64)),
                (
                    "ops_per_thread".to_string(),
                    Value::UInt(ops_per_thread as u64),
                ),
            ]),
        ),
        (
            "threads".to_string(),
            Value::Array(
                rows.iter()
                    .map(|(threads, events, legacy, sharded)| {
                        Value::Object(vec![
                            ("threads".to_string(), Value::UInt(*threads as u64)),
                            ("events".to_string(), Value::UInt(*events)),
                            ("delta".to_string(), delta_json(legacy, sharded)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "acceptance".to_string(),
            Value::Object(vec![
                ("speedup_1".to_string(), Value::Float(s1)),
                ("speedup_8".to_string(), Value::Float(s8)),
                ("speedup_64".to_string(), Value::Float(s64)),
                ("target".to_string(), Value::Float(4.0)),
                ("pass".to_string(), Value::Bool(s8 >= 4.0 && s64 >= 4.0)),
            ]),
        ),
    ]);

    let out = out.unwrap_or_else(|_| "BENCH_native.json".into());
    let body = ddrace_json::to_string_pretty(&doc).expect("bench document serializes");
    std::fs::write(&out, body + "\n").expect("write bench output");
    println!("wrote {out}");
}
