//! Experiment A2 — cooldown-window ablation.
//!
//! Sweeps the controller's cooldown (accesses without observed sharing
//! before analysis disables). Too eager a disable loses races whose
//! accesses fall outside the enabled windows; too lazy a disable forfeits
//! the speedup. The default sits on the knee.

use ddrace_bench::{print_table, ratio, run_one, run_one_with, save_json, ExpContext};
use ddrace_core::{AnalysisMode, ControllerConfig};
use ddrace_pmu::IndicatorMode;
use ddrace_workloads::{phoenix, racy};

#[derive(Debug)]
struct CooldownPoint {
    cooldown: u64,
    speedup_clean: f64,
    enables_clean: u64,
    racy_vars_found: usize,
    racy_events: u64,
}
ddrace_json::json_struct!(@to CooldownPoint { cooldown, speedup_clean, enables_clean, racy_vars_found, racy_events });

fn main() {
    let ctx = ExpContext::from_env();
    println!(
        "A2: cooldown-window sweep (scale {:?}, seed {})\n",
        ctx.scale, ctx.seed
    );

    let clean = phoenix::word_count();
    let racy_spec = racy::sparse_race();
    let cont_clean = run_one(&ctx, &clean, AnalysisMode::Continuous);

    let mut points = Vec::new();
    for cooldown in [100u64, 500, 1_000, 3_000, 6_000, 12_000, 50_000, 200_000] {
        let mode = AnalysisMode::Demand {
            indicator: IndicatorMode::hitm_default(),
            controller: ControllerConfig {
                cooldown_accesses: cooldown,
                min_on_accesses: (cooldown / 30).max(1),
                ..ControllerConfig::default()
            },
        };
        let r_clean = run_one_with(&ctx, &clean, ctx.sim_config(mode));
        let r_racy = run_one_with(&ctx, &racy_spec, ctx.sim_config(mode));
        points.push(CooldownPoint {
            cooldown,
            speedup_clean: r_clean.speedup_over(&cont_clean),
            enables_clean: r_clean.controller.unwrap().enables,
            racy_vars_found: r_racy.races.distinct_addresses,
            racy_events: r_racy.races.occurrences,
        });
    }

    let table: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.cooldown.to_string(),
                ratio(p.speedup_clean),
                p.enables_clean.to_string(),
                p.racy_vars_found.to_string(),
                p.racy_events.to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "cooldown (accesses)",
            "speedup word_count",
            "enables",
            "racy vars (sparse_race)",
            "racy events",
        ],
        &table,
    );
    save_json("exp_a2_cooldown_sweep", &points);
}
