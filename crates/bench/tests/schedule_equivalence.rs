//! Schedule-equivalence suite: the run-queue picker must reproduce the
//! legacy O(threads) scan **exactly** — same interleaving, same races,
//! same aggregate bytes — over the full `exp_f8` matrix (its workloads ×
//! seeds × modes). This is the contract that lets the scheduler rewrite
//! ship without regenerating a single `results/` file, and the reason
//! [`PickStrategy`] is excluded from the harness job fingerprint.
//!
//! The suite defaults to `Scale::TEST` so it stays CI-cheap; set
//! `DDRACE_SCALE=small` (or `large`) to re-verify at experiment scale.
//! In debug builds every pick is additionally cross-checked inside the
//! scheduler (`debug_assert`), so these runs verify the equivalence at
//! every single scheduling decision, not just at the endpoints.

use ddrace_bench::{host_workers, ExpContext};
use ddrace_core::{AnalysisMode, Simulation};
use ddrace_harness::{run_campaign, Campaign, EventSink};
use ddrace_json::ToJson;
use ddrace_program::PickStrategy;
use ddrace_workloads::{parsec, phoenix, Scale, WorkloadSpec};

/// The `exp_f8` workload set.
fn specs() -> Vec<WorkloadSpec> {
    vec![
        phoenix::linear_regression(),
        phoenix::kmeans(),
        phoenix::word_count(),
        parsec::canneal(),
        parsec::swaptions(),
        parsec::dedup(),
    ]
}

/// The `exp_f8` seed axis.
fn seeds(ctx: &ExpContext) -> Vec<u64> {
    (0..5).map(|i| ctx.seed + i * 1_000).collect()
}

/// The `exp_f8` mode axis.
fn modes() -> [AnalysisMode; 2] {
    [AnalysisMode::Continuous, AnalysisMode::demand_hitm()]
}

/// Environment context, defaulting to `Scale::TEST` (unlike experiments)
/// unless `DDRACE_SCALE` explicitly says otherwise.
fn ctx() -> ExpContext {
    let mut ctx = ExpContext::from_env();
    if std::env::var("DDRACE_SCALE").is_err() {
        ctx.scale = Scale::TEST;
    }
    ctx
}

fn run(
    ctx: &ExpContext,
    spec: &WorkloadSpec,
    mode: AnalysisMode,
    seed: u64,
    strategy: PickStrategy,
) -> ddrace_core::RunResult {
    let mut cfg = ctx.sim_config(mode);
    cfg.scheduler.seed = seed;
    cfg.pick_strategy = strategy;
    Simulation::new(cfg)
        .run(spec.program(ctx.scale, seed))
        .unwrap_or_else(|e| panic!("{} failed to schedule: {e}", spec.name))
}

/// Every (workload, seed, mode) cell of the exp_f8 matrix produces a
/// byte-identical `RunResult` document and identical race reports under
/// both pickers.
#[test]
fn run_results_identical_for_both_pickers() {
    let ctx = ctx();
    for spec in specs() {
        for &seed in &seeds(&ctx) {
            for mode in modes() {
                let queue = run(&ctx, &spec, mode, seed, PickStrategy::RunQueue);
                let scan = run(&ctx, &spec, mode, seed, PickStrategy::LegacyScan);
                assert_eq!(
                    queue.races.reports,
                    scan.races.reports,
                    "{}/{}/s{seed}: race reports diverged",
                    spec.name,
                    mode.label()
                );
                let qj = ddrace_json::to_string_pretty(&queue.to_json()).unwrap();
                let sj = ddrace_json::to_string_pretty(&scan.to_json()).unwrap();
                assert_eq!(
                    qj,
                    sj,
                    "{}/{}/s{seed}: run results diverged",
                    spec.name,
                    mode.label()
                );
            }
        }
    }
}

/// The harness-level aggregate — the document the `results/exp_*` files
/// are built from — is byte-identical between pickers when the whole
/// matrix runs on the campaign worker pool.
#[test]
fn campaign_aggregates_identical_for_both_pickers() {
    let ctx = ctx();
    let aggregate = |strategy: PickStrategy| {
        let campaign = Campaign::builder("schedule_equivalence")
            .workloads(specs())
            .modes(modes())
            .seeds(seeds(&ctx))
            .scale(ctx.scale)
            .cores(ctx.cores)
            .pick_strategy(strategy)
            .build();
        let report = run_campaign(&campaign, host_workers(), &EventSink::null());
        assert_eq!(report.failed(), 0, "no job may fail");
        ddrace_json::to_string_pretty(&report.aggregate_json()).unwrap()
    };
    assert_eq!(
        aggregate(PickStrategy::RunQueue),
        aggregate(PickStrategy::LegacyScan),
        "campaign aggregates diverged between pickers"
    );
}
