//! Pins the A3/A5 campaign ports to the legacy direct-simulation paths:
//! a variant-swept campaign job must produce byte-identical results to
//! the hand-rolled `SimConfig` loops the experiment binaries used before
//! the variant axis existed.

use ddrace_bench::ExpContext;
use ddrace_core::{AnalysisMode, SimConfig, Simulation};
use ddrace_harness::{run_campaign, Campaign, EventSink, JobVariant};
use ddrace_json::ToJson;
use ddrace_program::SchedulerConfig;
use ddrace_workloads::{racy, Scale};

/// The legacy A3 loop body: context config plus a hand-patched private
/// hierarchy (L2 to the swept size, L1 to 1/8th of it), running the
/// delayed-sharing kernel directly.
fn legacy_a3(ctx: &ExpContext, l2_sets: usize, mode: AnalysisMode) -> ddrace_core::RunResult {
    let mut config = ctx.sim_config(mode);
    config.cache.l1 = ddrace_cache::LevelConfig {
        sets: (l2_sets / 8).max(2),
        ways: 8,
        latency: 4,
    };
    config.cache.l2 = ddrace_cache::LevelConfig {
        sets: l2_sets,
        ways: 8,
        latency: 12,
    };
    Simulation::new(config)
        .run(racy::delayed_sharing(64, 16 * 1024, 3))
        .unwrap()
}

#[test]
fn a3_campaign_port_matches_legacy_sweep() {
    let ctx = ExpContext {
        scale: Scale::SMALL,
        seed: 5,
        cores: 4,
    };
    // SMALL is the identity scale, so the spec's rounds survive unscaled
    // and the campaign job runs the exact legacy program.
    let campaign = Campaign::builder("a3-port")
        .workloads([racy::delayed_sharing_spec(64, 16 * 1024, 3)])
        .modes([AnalysisMode::demand_hitm(), AnalysisMode::demand_oracle()])
        .variants([
            JobVariant::private_cache("16KiB", 32),
            JobVariant::private_cache("256KiB", 512),
        ])
        .seeds([ctx.seed])
        .scale(ctx.scale)
        .cores(ctx.cores)
        .build();
    let report = run_campaign(&campaign, 2, &EventSink::null());
    assert_eq!(report.failed(), 0);
    // Jobs are mode-major, variant innermost (single seed).
    for (m, mode) in [AnalysisMode::demand_hitm(), AnalysisMode::demand_oracle()]
        .into_iter()
        .enumerate()
    {
        for (v, l2_sets) in [32usize, 512].into_iter().enumerate() {
            let ported = report.result(m * 2 + v).unwrap();
            let legacy = legacy_a3(&ctx, l2_sets, mode);
            assert_eq!(
                ported.to_json().to_compact(),
                legacy.to_json().to_compact(),
                "A3 port diverges at mode {m}, l2_sets {l2_sets}"
            );
        }
    }
}

/// The legacy A5 loop body: a fresh `SimConfig` at the swept core count
/// with the context scheduler, running the workload program directly.
fn legacy_a5(seed: u64, cores: usize, mode: AnalysisMode) -> ddrace_core::RunResult {
    let spec = racy::unprotected_counter();
    let mut cfg = SimConfig::new(cores, mode);
    cfg.scheduler = SchedulerConfig {
        quantum: 32,
        seed,
        jitter: true,
    };
    Simulation::new(cfg)
        .run(spec.program(Scale::TEST, seed))
        .unwrap()
}

#[test]
fn a5_campaign_port_matches_legacy_sweep() {
    let seed = 11;
    let campaign = Campaign::builder("a5-port")
        .workloads([racy::unprotected_counter()])
        .modes([AnalysisMode::demand_hitm(), AnalysisMode::Continuous])
        .variants([JobVariant::with_cores(2), JobVariant::with_cores(1)])
        .seeds([seed])
        .scale(Scale::TEST)
        .cores(8)
        .build();
    let report = run_campaign(&campaign, 2, &EventSink::null());
    assert_eq!(report.failed(), 0);
    for (m, mode) in [AnalysisMode::demand_hitm(), AnalysisMode::Continuous]
        .into_iter()
        .enumerate()
    {
        for (v, cores) in [2usize, 1].into_iter().enumerate() {
            let ported = report.result(m * 2 + v).unwrap();
            let legacy = legacy_a5(seed, cores, mode);
            assert_eq!(
                ported.to_json().to_compact(),
                legacy.to_json().to_compact(),
                "A5 port diverges at mode {m}, cores {cores}"
            );
        }
    }
}
