//! # ddrace-telemetry — spans and counters for campaign observability
//!
//! A deliberately tiny telemetry layer with no external dependencies. The
//! simulator (`ddrace-core::sim`) and the race detectors (`ddrace-detector`)
//! emit **counters** (cycles simulated, HITM interrupts, shadow-memory
//! operations, enable/disable transitions) and **spans** (wall-clock timings
//! of named phases) into a thread-local [`Telemetry`] sink; the campaign
//! harness installs a sink around each job and collects it afterwards.
//!
//! Two properties matter:
//!
//! - **Zero cost when idle.** When no sink is installed (every non-campaign
//!   use of the simulator), [`counter`] and [`span`] are a thread-local flag
//!   check and nothing else.
//! - **Counters are deterministic, spans are not.** Counters reflect
//!   simulated quantities and are byte-reproducible across runs and worker
//!   counts; spans measure host wall-clock. The harness therefore puts
//!   counters in the deterministic aggregate JSON and spans only in the
//!   per-job JSONL event stream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ddrace_json::{FromJson, JsonError, ToJson, Value};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

thread_local! {
    static SINK: RefCell<Option<Telemetry>> = const { RefCell::new(None) };
}

/// Aggregated wall-clock statistics for one named span.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStats {
    /// How many times the span was entered.
    pub count: u64,
    /// Total nanoseconds spent inside the span.
    pub total_ns: u64,
}

/// A collected set of counters and span timings.
///
/// Keys are `&'static str` names like `"sim.pmis"`; [`BTreeMap`] keeps
/// serialization order stable.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Telemetry {
    counters: BTreeMap<&'static str, u64>,
    spans: BTreeMap<&'static str, SpanStats>,
}

impl Telemetry {
    /// An empty collection.
    pub fn new() -> Telemetry {
        Telemetry::default()
    }

    /// Adds `delta` to a named counter.
    pub fn add(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    /// Records one completed span occurrence.
    pub fn add_span(&mut self, name: &'static str, elapsed_ns: u64) {
        let s = self.spans.entry(name).or_default();
        s.count += 1;
        s.total_ns += elapsed_ns;
    }

    /// Reads a counter; missing counters read as zero.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Iterates counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(k, v)| (*k, *v))
    }

    /// Iterates spans in name order.
    pub fn spans(&self) -> impl Iterator<Item = (&'static str, SpanStats)> + '_ {
        self.spans.iter().map(|(k, v)| (*k, *v))
    }

    /// Merges another collection into this one (used for campaign totals).
    pub fn merge(&mut self, other: &Telemetry) {
        for (name, value) in &other.counters {
            *self.counters.entry(name).or_insert(0) += value;
        }
        for (name, stats) in &other.spans {
            let s = self.spans.entry(name).or_default();
            s.count += stats.count;
            s.total_ns += stats.total_ns;
        }
    }

    /// The deterministic half only: counters, no wall-clock spans.
    pub fn counters_json(&self) -> Value {
        Value::Object(
            self.counters
                .iter()
                .map(|(k, v)| (k.to_string(), Value::UInt(*v)))
                .collect(),
        )
    }
}

/// Interns a counter/span name, returning a `'static` reference.
///
/// Live telemetry uses `&'static str` literals as keys; telemetry parsed
/// back from a JSONL event stream (campaign resume) has owned strings.
/// Interning routes both through the same keyspace. Names come from a
/// small fixed vocabulary, so the registry stays tiny.
pub fn intern(name: &str) -> &'static str {
    static REGISTRY: OnceLock<Mutex<BTreeMap<String, &'static str>>> = OnceLock::new();
    let registry = REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()));
    let mut map = registry.lock().unwrap();
    if let Some(&interned) = map.get(name) {
        return interned;
    }
    let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
    map.insert(name.to_string(), leaked);
    leaked
}

impl ToJson for Telemetry {
    fn to_json(&self) -> Value {
        let spans = self
            .spans
            .iter()
            .map(|(k, s)| {
                (
                    k.to_string(),
                    Value::Object(vec![
                        ("count".to_string(), Value::UInt(s.count)),
                        ("total_ns".to_string(), Value::UInt(s.total_ns)),
                    ]),
                )
            })
            .collect();
        Value::Object(vec![
            ("counters".to_string(), self.counters_json()),
            ("spans".to_string(), Value::Object(spans)),
        ])
    }
}

impl FromJson for Telemetry {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        let mut t = Telemetry::new();
        let counters = value.get_or_null("counters");
        if let Some(pairs) = counters.as_object() {
            for (name, v) in pairs {
                let n = v
                    .as_u64()
                    .ok_or_else(|| JsonError::decode(format!("counter `{name}`: not a u64")))?;
                t.add(intern(name), n);
            }
        } else if !counters.is_null() {
            return Err(JsonError::decode("telemetry counters: not an object"));
        }
        let spans = value.get_or_null("spans");
        if let Some(pairs) = spans.as_object() {
            for (name, v) in pairs {
                let stats = SpanStats {
                    count: ddrace_json::field(v, "count")?,
                    total_ns: ddrace_json::field(v, "total_ns")?,
                };
                let s = t.spans.entry(intern(name)).or_default();
                s.count += stats.count;
                s.total_ns += stats.total_ns;
            }
        } else if !spans.is_null() {
            return Err(JsonError::decode("telemetry spans: not an object"));
        }
        Ok(t)
    }
}

/// Installs a fresh sink on this thread, returning whether one was replaced.
///
/// The harness calls this at the start of each job; nested installs reset
/// the sink, which keeps a panicking job from leaking counters into the
/// next job run on the same worker.
pub fn install() -> bool {
    SINK.with(|s| s.borrow_mut().replace(Telemetry::new()).is_some())
}

/// Removes and returns this thread's sink, if any.
pub fn take() -> Option<Telemetry> {
    SINK.with(|s| s.borrow_mut().take())
}

/// True when a sink is installed on this thread.
pub fn active() -> bool {
    SINK.with(|s| s.borrow().is_some())
}

/// Adds `delta` to a named counter on the current sink; no-op when inactive.
pub fn counter(name: &'static str, delta: u64) {
    SINK.with(|s| {
        if let Some(t) = s.borrow_mut().as_mut() {
            t.add(name, delta);
        }
    });
}

/// Opens a wall-clock span; the elapsed time is recorded when the returned
/// guard drops. No-op (and no clock read) when no sink is installed.
pub fn span(name: &'static str) -> SpanGuard {
    SpanGuard {
        name,
        start: active().then(Instant::now),
    }
}

/// Guard returned by [`span`]; records elapsed time on drop.
#[must_use = "a span measures until the guard drops"]
pub struct SpanGuard {
    name: &'static str,
    start: Option<Instant>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            SINK.with(|s| {
                if let Some(t) = s.borrow_mut().as_mut() {
                    t.add_span(self.name, ns);
                }
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_only_while_installed() {
        counter("x", 5); // no sink: dropped
        install();
        counter("x", 2);
        counter("x", 3);
        {
            let _g = span("phase");
        }
        let t = take().unwrap();
        assert_eq!(t.counter("x"), 5);
        assert_eq!(t.spans().count(), 1);
        assert!(take().is_none());
    }

    #[test]
    fn merge_sums_both_halves() {
        let mut a = Telemetry::new();
        a.add("n", 1);
        a.add_span("s", 10);
        let mut b = Telemetry::new();
        b.add("n", 2);
        b.add("m", 7);
        b.add_span("s", 5);
        a.merge(&b);
        assert_eq!(a.counter("n"), 3);
        assert_eq!(a.counter("m"), 7);
        assert_eq!(
            a.spans().collect::<Vec<_>>(),
            vec![(
                "s",
                SpanStats {
                    count: 2,
                    total_ns: 15
                }
            )]
        );
    }

    #[test]
    fn telemetry_roundtrips_through_json() {
        let mut t = Telemetry::new();
        t.add("sim.cycles", 12);
        t.add("det.reads", 3);
        t.add_span("job.run", 450);
        let text = ddrace_json::to_string(&t).unwrap();
        let back: Telemetry = ddrace_json::from_str(&text).unwrap();
        assert_eq!(back, t);
        // Counter keys survive intact (interned, not literal) — the
        // deterministic half re-serializes byte-identically.
        assert_eq!(
            back.counters_json().to_compact(),
            t.counters_json().to_compact()
        );
    }

    #[test]
    fn intern_is_stable() {
        let a = intern("some.counter");
        let b = intern("some.counter");
        assert!(std::ptr::eq(a, b));
        assert_eq!(intern("sim.cycles"), "sim.cycles");
    }

    #[test]
    fn counters_json_is_name_ordered() {
        let mut t = Telemetry::new();
        t.add("z.last", 1);
        t.add("a.first", 2);
        assert_eq!(
            ddrace_json::to_string(&t.counters_json()).unwrap(),
            r#"{"a.first":2,"z.last":1}"#
        );
    }
}
