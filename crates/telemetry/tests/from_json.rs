//! The `FromJson` decode path and its counter-name interner: telemetry
//! parsed back from a campaign's JSONL stream must land in the same
//! `&'static str` keyspace live telemetry uses, whatever the names are
//! and however often they repeat.

use ddrace_json::{FromJson, ToJson, Value};
use ddrace_telemetry::{intern, Telemetry};

#[test]
fn empty_telemetry_round_trips() {
    for text in [
        "{}",
        r#"{"counters":{},"spans":{}}"#,
        r#"{"counters":null}"#,
    ] {
        let t = Telemetry::from_json(&Value::parse(text).unwrap()).unwrap();
        assert_eq!(t, Telemetry::new(), "source: {text}");
        assert_eq!(t.counters().count(), 0);
        assert_eq!(t.spans().count(), 0);
    }
    let back = Telemetry::from_json(&Telemetry::new().to_json()).unwrap();
    assert_eq!(back, Telemetry::new());
}

#[test]
fn duplicate_counter_names_intern_to_one_key_and_sum() {
    // The value model is an ordered pair list, so a JSON object can carry
    // the same key twice; decode must fold both additions into one
    // interned counter rather than growing a second key.
    let t =
        Telemetry::from_json(&Value::parse(r#"{"counters":{"sim.pmis":3,"sim.pmis":4}}"#).unwrap())
            .unwrap();
    assert_eq!(t.counter("sim.pmis"), 7);
    assert_eq!(t.counters().count(), 1);

    // Same for spans: occurrences accumulate under one interned name.
    let t = Telemetry::from_json(
        &Value::parse(
            r#"{"spans":{"job.run":{"count":1,"total_ns":10},"job.run":{"count":2,"total_ns":5}}}"#,
        )
        .unwrap(),
    )
    .unwrap();
    let spans: Vec<_> = t.spans().collect();
    assert_eq!(spans.len(), 1);
    assert_eq!(spans[0].0, "job.run");
    assert_eq!(spans[0].1.count, 3);
    assert_eq!(spans[0].1.total_ns, 15);
}

#[test]
fn unknown_counter_names_are_interned_stably() {
    // Names outside the built-in vocabulary still work — the interner
    // leaks them once and hands every later parse the same pointer.
    let text = r#"{"counters":{"custom.exotic_counter":1}}"#;
    let a = Telemetry::from_json(&Value::parse(text).unwrap()).unwrap();
    let b = Telemetry::from_json(&Value::parse(text).unwrap()).unwrap();
    let key_a = a.counters().next().unwrap().0;
    let key_b = b.counters().next().unwrap().0;
    assert_eq!(key_a, "custom.exotic_counter");
    assert!(
        std::ptr::eq(key_a, key_b),
        "repeated parses must reuse the interned allocation"
    );
    assert!(std::ptr::eq(key_a, intern("custom.exotic_counter")));
}

#[test]
fn interned_telemetry_merges_with_live_telemetry() {
    // The point of interning: decoded counters share the keyspace of
    // live `&'static str` literals, so merge folds rather than forks.
    let decoded =
        Telemetry::from_json(&Value::parse(r#"{"counters":{"sim.cycles":5}}"#).unwrap()).unwrap();
    let mut live = Telemetry::new();
    live.add("sim.cycles", 2);
    live.merge(&decoded);
    assert_eq!(live.counter("sim.cycles"), 7);
    assert_eq!(live.counters().count(), 1);
}

#[test]
fn malformed_documents_are_rejected_with_field_context() {
    let err = Telemetry::from_json(&Value::parse(r#"{"counters":{"sim.pmis":"three"}}"#).unwrap())
        .unwrap_err();
    assert!(
        err.to_string().contains("counter `sim.pmis`: not a u64"),
        "{err}"
    );
    let err = Telemetry::from_json(&Value::parse(r#"{"counters":{"sim.pmis":-1}}"#).unwrap())
        .unwrap_err();
    assert!(err.to_string().contains("not a u64"), "{err}");
    let err = Telemetry::from_json(&Value::parse(r#"{"counters":[1,2]}"#).unwrap()).unwrap_err();
    assert!(
        err.to_string()
            .contains("telemetry counters: not an object"),
        "{err}"
    );
    let err = Telemetry::from_json(&Value::parse(r#"{"spans":7}"#).unwrap()).unwrap_err();
    assert!(
        err.to_string().contains("telemetry spans: not an object"),
        "{err}"
    );
}
