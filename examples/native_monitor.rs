//! Native monitor: race-checking *real* `std::thread` code with the same
//! FastTrack engine the simulator uses (`ddrace-native`).
//!
//! Two versions of a tiny concurrent component run below: one with a
//! forgotten lock on the statistics counter (buggy) and one fully locked
//! (fixed). Because detection is happens-before-based, the verdicts are
//! deterministic — no need to get lucky with the OS scheduler.
//!
//! ```sh
//! cargo run --release --example native_monitor
//! ```

use ddrace::native::{addr_of, Monitor};
use std::sync::{Arc, Mutex};

/// A shared work tally: `total` is lock-protected; `last_worker` is the
/// bug — updated outside the lock in the buggy variant.
struct Tally {
    total: Mutex<u64>,
    last_worker: std::cell::Cell<u64>,
}

// The buggy variant really does share `last_worker` unsynchronized; the
// monitor is what catches it. (Cell is not Sync, so this wrapper is what
// a C codebase would have done implicitly.)
struct ShareAnyway(Tally);
unsafe impl Sync for ShareAnyway {}

fn run_workers(buggy: bool) -> usize {
    let (monitor, root) = Monitor::new();
    let tally = Arc::new(ShareAnyway(Tally {
        total: Mutex::new(0),
        last_worker: std::cell::Cell::new(0),
    }));
    let total_addr = addr_of(&tally.0.total);
    let last_addr = addr_of(&tally.0.last_worker);

    let mut handles = Vec::new();
    let mut tokens = Vec::new();
    for worker in 0..4u64 {
        let token = monitor.fork(root);
        tokens.push(token);
        let monitor = monitor.clone();
        let tally = tally.clone();
        handles.push(std::thread::spawn(move || {
            for _ in 0..50 {
                let mut guard = tally.0.total.lock().unwrap();
                monitor.lock_acquired(token, 0);
                monitor.read(token, total_addr);
                *guard += 1;
                monitor.write(token, total_addr);
                if buggy {
                    // BUG: updated after the critical section.
                    monitor.lock_released(token, 0);
                    drop(guard);
                    tally.0.last_worker.set(worker);
                    monitor.write(token, last_addr);
                } else {
                    tally.0.last_worker.set(worker);
                    monitor.write(token, last_addr);
                    monitor.lock_released(token, 0);
                    drop(guard);
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    for token in tokens {
        monitor.join(root, token);
    }

    println!(
        "  total = {}, races found = {}",
        *tally.0.total.lock().unwrap(),
        monitor.race_count()
    );
    for report in monitor.reports() {
        println!("    {report}");
    }
    monitor.race_count()
}

fn main() {
    println!("buggy variant (last_worker updated outside the lock):");
    let buggy_races = run_workers(true);
    println!("\nfixed variant (everything inside the critical section):");
    let fixed_races = run_workers(false);
    assert!(buggy_races > 0, "the bug must be caught");
    assert_eq!(fixed_races, 0, "the fix must be clean");
    println!("\nThe monitor caught the bug and cleared the fix — deterministically.");
}
