//! Benchmark tour: the paper's headline result in miniature.
//!
//! Runs one low-sharing Phoenix program and one high-sharing PARSEC
//! program under native / continuous / demand-driven analysis and prints
//! the slowdowns side by side — the reason demand-driven analysis is 10×
//! on one suite and 3× on the other.
//!
//! ```sh
//! cargo run --release --example benchmark_tour
//! ```

use ddrace::{parsec, phoenix, AnalysisMode, Scale, ScheduleError, SimConfig, Simulation};

fn main() -> Result<(), ScheduleError> {
    let scale = Scale::SMALL;
    let seed = 42;

    for spec in [
        phoenix::linear_regression(),
        phoenix::word_count(),
        parsec::canneal(),
    ] {
        println!("=== {} ({}) ===", spec.name, spec.suite);
        let run = |mode| Simulation::new(SimConfig::new(8, mode)).run(spec.program(scale, seed));
        let native = run(AnalysisMode::Native)?;
        let cont = run(AnalysisMode::Continuous)?;
        let demand = run(AnalysisMode::demand_hitm())?;
        println!("  native      {:>12} cycles", native.makespan);
        println!(
            "  continuous  {:>12} cycles   ({:.1}x slowdown)",
            cont.makespan,
            cont.slowdown_vs(&native)
        );
        println!(
            "  demand      {:>12} cycles   ({:.1}x slowdown, {:.1}x speedup over continuous)",
            demand.makespan,
            demand.slowdown_vs(&native),
            demand.speedup_over(&cont)
        );
        println!(
            "  demand analyzed {:.2}% of accesses across {} enable(s); {} HITM loads seen",
            demand.analyzed_fraction() * 100.0,
            demand.controller.map(|c| c.enables).unwrap_or(0),
            demand.cache.total_hitm_loads(),
        );
        println!(
            "  analysis timeline  [{}]\n",
            ddrace::result_timeline(&demand, 56)
        );
    }
    Ok(())
}
