//! Quickstart: build a small racy program by hand and watch each analysis
//! mode handle it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ddrace::{run_program, AnalysisMode, ProgramBuilder, ScheduleError, ThreadId};

fn main() -> Result<(), ScheduleError> {
    // Two workers hammer a shared counter without a lock while also doing
    // plenty of innocent private work; main forks and joins them.
    let build = || {
        let mut b = ProgramBuilder::new();
        let counter = b.alloc_shared(8).base();
        let w1 = b.add_thread();
        let w2 = b.add_thread();
        let p1 = b.alloc_private(w1, 8 * 1024);
        let p2 = b.alloc_private(w2, 8 * 1024);
        b.on(ThreadId::MAIN)
            .fork(w1)
            .fork(w2)
            .join(w1)
            .join(w2)
            .read(counter);
        for (w, p) in [(w1, p1), (w2, p2)] {
            let mut c = b.on(w);
            for i in 0..2_000u64 {
                c = c.write(p.index(i * 8)).read(p.index(i * 8)).compute(2);
                if i % 100 == 0 {
                    // The bug: unsynchronized increment of the counter.
                    c = c.read(counter).write(counter);
                }
            }
            let _ = c;
        }
        b.build()
    };

    println!("mode          makespan(cycles)  slowdown  races  accesses-analyzed");
    let native = run_program(build(), 4, AnalysisMode::Native)?;
    for mode in [
        AnalysisMode::Native,
        AnalysisMode::Continuous,
        AnalysisMode::demand_hitm(),
        AnalysisMode::demand_oracle(),
    ] {
        let r = run_program(build(), 4, mode)?;
        println!(
            "{:<13} {:>16}  {:>7.1}x  {:>5}  {:>10} / {}",
            r.mode,
            r.makespan,
            r.slowdown_vs(&native),
            r.races.distinct,
            r.accesses_analyzed,
            r.accesses_total,
        );
    }

    println!("\nThe racy pair as the detector reports it (continuous mode):");
    let r = run_program(build(), 4, AnalysisMode::Continuous)?;
    for report in &r.races.reports {
        println!("  {report}");
    }
    Ok(())
}
