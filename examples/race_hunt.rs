//! Race hunt: planted concurrency bugs under each analysis configuration.
//!
//! Shows that demand-driven analysis catches the same bugs as continuous
//! analysis on these kernels — including the classic unsafe-publication
//! pattern — and what the oracle indicator adds.
//!
//! ```sh
//! cargo run --release --example race_hunt
//! ```

use ddrace::{racy, AnalysisMode, Scale, ScheduleError, SimConfig, Simulation};

fn main() -> Result<(), ScheduleError> {
    println!(
        "{:<22} {:>12} {:>12} {:>12}",
        "workload", "continuous", "demand-HITM", "oracle"
    );
    println!("{}", "-".repeat(62));

    for spec in racy::kernels() {
        let mut cells = Vec::new();
        for mode in [
            AnalysisMode::Continuous,
            AnalysisMode::demand_hitm(),
            AnalysisMode::demand_oracle(),
        ] {
            let r = Simulation::new(SimConfig::new(4, mode)).run(spec.program(Scale::SMALL, 7))?;
            cells.push(format!("{} vars", r.races.distinct_addresses));
        }
        println!(
            "{:<22} {:>12} {:>12} {:>12}",
            spec.name, cells[0], cells[1], cells[2]
        );
    }

    // The publication bug, spelled out op by op. This one doubles as a
    // live demonstration of the demand-driven trade-off: the bug fires
    // exactly once, and by the time the HITM interrupt wakes the detector
    // the racing *write* has already gone unobserved — so demand-HITM
    // typically reports nothing here, while continuous analysis nails it.
    println!("\nunsafe publication (flag raised with a plain store):");
    for mode in [AnalysisMode::Continuous, AnalysisMode::demand_hitm()] {
        let r = Simulation::new(SimConfig::new(2, mode)).run(racy::racy_publication(50))?;
        println!("  {:<12} found {} race(s):", r.mode, r.races.distinct);
        for report in &r.races.reports {
            println!("    {report}");
        }
    }

    let safe = Simulation::new(SimConfig::new(2, AnalysisMode::Continuous))
        .run(racy::safe_publication())?;
    println!(
        "\nsemaphore-synchronized publication (negative control): {} race(s)",
        safe.races.distinct
    );
    Ok(())
}
