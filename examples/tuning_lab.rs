//! Tuning lab: how the demand controller's knobs trade speed for
//! detection coverage on a sparse racy workload.
//!
//! ```sh
//! cargo run --release --example tuning_lab
//! ```

use ddrace::{
    racy, AnalysisMode, ControllerConfig, IndicatorMode, Scale, ScheduleError, SimConfig,
    Simulation,
};

fn main() -> Result<(), ScheduleError> {
    let spec = racy::sparse_race();
    let program = || spec.program(Scale::SMALL, 11);

    let cont = Simulation::new(SimConfig::new(4, AnalysisMode::Continuous)).run(program())?;
    println!(
        "continuous baseline: {} cycles, {} racy vars\n",
        cont.makespan, cont.races.distinct_addresses
    );

    println!(
        "{:>10} {:>8} {:>10} {:>10} {:>10}",
        "cooldown", "period", "speedup", "racy vars", "enables"
    );
    for period in [1u64, 10, 100] {
        for cooldown in [500u64, 6_000, 50_000] {
            let mode = AnalysisMode::Demand {
                indicator: IndicatorMode::HitmSampling {
                    period,
                    skid: 20,
                    include_rfo: false,
                },
                controller: ControllerConfig {
                    cooldown_accesses: cooldown,
                    min_on_accesses: 200,
                    ..ControllerConfig::default()
                },
            };
            let r = Simulation::new(SimConfig::new(4, mode)).run(program())?;
            println!(
                "{:>10} {:>8} {:>9.1}x {:>10} {:>10}",
                cooldown,
                period,
                r.speedup_over(&cont),
                r.races.distinct_addresses,
                r.controller.map(|c| c.enables).unwrap_or(0),
            );
        }
    }
    println!("\nLarger sampling periods and shorter cooldowns are faster but miss more.");
    Ok(())
}
