#!/usr/bin/env bash
# Offline CI gate: formatting, lints, tier-1 build + tests.
#
# The workspace has no registry dependencies (see DESIGN.md "Dependencies"),
# so everything here must pass with the network unplugged.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q (root package)"
cargo test -q

echo "==> workspace tests"
cargo test -q --workspace

echo "CI green."
