#!/usr/bin/env bash
# Offline CI gate: formatting, lints, tier-1 build + tests.
#
# The workspace has no registry dependencies (see DESIGN.md "Dependencies"),
# so everything here must pass with the network unplugged.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q (root package)"
cargo test -q

echo "==> workspace tests"
cargo test -q --workspace

# The aggregate (and its interrupt-then-resume reconstruction) must be
# byte-identical at any worker count; pin both ends of the range in CI,
# not just whatever parallelism the local machine happens to have.
echo "==> harness determinism + resume at DDRACE_WORKERS=1"
DDRACE_WORKERS=1 cargo test -q -p ddrace-harness --test determinism --test resume

echo "==> harness determinism + resume at DDRACE_WORKERS=8"
DDRACE_WORKERS=8 cargo test -q -p ddrace-harness --test determinism --test resume

# The run-queue picker must stay bit-identical to the legacy scan at any
# worker count (the suite also cross-checks every pick in debug builds).
echo "==> schedule equivalence at DDRACE_WORKERS=1"
DDRACE_WORKERS=1 cargo test -q -p ddrace-bench --test schedule_equivalence

echo "==> schedule equivalence at DDRACE_WORKERS=8"
DDRACE_WORKERS=8 cargo test -q -p ddrace-bench --test schedule_equivalence

# Smoke the variant axis end to end: the ported A3 binary sweeps cache
# geometry as campaign variants, checkpointing to a scratch event stream.
echo "==> variant-sweep smoke (ported A3 at test scale)"
A3_SMOKE_DIR=$(mktemp -d)
DDRACE_SCALE=test DDRACE_RESULTS_DIR="$A3_SMOKE_DIR" \
    DDRACE_EVENTS="$A3_SMOKE_DIR/events.jsonl" \
    cargo run --release -q -p ddrace-bench --bin exp_a3_cache_sweep
rm -rf "$A3_SMOKE_DIR"

# Conformance fuzz smoke: a fixed-seed battery of generated specs through
# the differential/metamorphic oracles. Gates on three things: zero
# violations, byte-identical aggregate + sorted event stream across a
# rerun, and byte-identical aggregate across 1 vs 8 workers (the sorted
# streams differ only in the campaign_started worker count, so the
# cross-worker comparison uses the aggregate).
echo "==> conformance fuzz smoke (seed 1, 200 specs, workers 1 and 8)"
FUZZ_SMOKE_DIR=$(mktemp -d)
./target/release/ddrace fuzz --seed 1 --count 200 --workers 8 --quiet \
    --events "$FUZZ_SMOKE_DIR/ev8a.jsonl" --out "$FUZZ_SMOKE_DIR/agg8a.json" \
    --repro-dir "$FUZZ_SMOKE_DIR"
./target/release/ddrace fuzz --seed 1 --count 200 --workers 8 --quiet \
    --events "$FUZZ_SMOKE_DIR/ev8b.jsonl" --out "$FUZZ_SMOKE_DIR/agg8b.json" \
    --repro-dir "$FUZZ_SMOKE_DIR"
./target/release/ddrace fuzz --seed 1 --count 200 --workers 1 --quiet \
    --out "$FUZZ_SMOKE_DIR/agg1.json" --repro-dir "$FUZZ_SMOKE_DIR"
diff "$FUZZ_SMOKE_DIR/agg8a.json" "$FUZZ_SMOKE_DIR/agg8b.json"
sort "$FUZZ_SMOKE_DIR/ev8a.jsonl" > "$FUZZ_SMOKE_DIR/ev8a.sorted"
sort "$FUZZ_SMOKE_DIR/ev8b.jsonl" > "$FUZZ_SMOKE_DIR/ev8b.sorted"
diff "$FUZZ_SMOKE_DIR/ev8a.sorted" "$FUZZ_SMOKE_DIR/ev8b.sorted"
diff "$FUZZ_SMOKE_DIR/agg8a.json" "$FUZZ_SMOKE_DIR/agg1.json"
rm -rf "$FUZZ_SMOKE_DIR"

# Record/ingest pipeline smoke across the format × engine axes: record
# the same corpus at both .ddt versions, replay the v1 corpus through
# the serial engine and the v2 corpus through the pipelined engine at
# 1 and 8 workers, and require every aggregate byte-identical — the
# on-disk framing, the ingest engine, and the worker count must all be
# invisible in what a replay reports. The fuzz burst above already runs
# the live≡replayed conformance oracle over every generated spec.
echo "==> record/ingest smoke (v1-serial vs v2-pipelined, workers 1 and 8)"
TRACE_SMOKE_DIR=$(mktemp -d)
mkdir -p "$TRACE_SMOKE_DIR/v1" "$TRACE_SMOKE_DIR/v2"
for bench in unprotected_counter sparse_race mostly_locked; do
    for fmt in v1 v2; do
        ./target/release/ddrace record --bench "$bench" --scale test --seed 42 \
            --format "$fmt" --out "$TRACE_SMOKE_DIR/$fmt/$bench.ddt" > /dev/null
    done
done
for workers in 1 8; do
    ./target/release/ddrace ingest --corpus "$TRACE_SMOKE_DIR/v1" --engine serial \
        --workers "$workers" --quiet --out "$TRACE_SMOKE_DIR/v1-serial-w$workers.json"
    ./target/release/ddrace ingest --corpus "$TRACE_SMOKE_DIR/v2" --engine pipelined \
        --workers "$workers" --quiet --out "$TRACE_SMOKE_DIR/v2-pipelined-w$workers.json"
done
# Repeatability, then engine/format equivalence, then worker-count
# equivalence — all reduce to one chain of byte-for-byte diffs.
./target/release/ddrace ingest --corpus "$TRACE_SMOKE_DIR/v2" --engine pipelined \
    --workers 8 --quiet --out "$TRACE_SMOKE_DIR/v2-pipelined-w8-rerun.json"
diff "$TRACE_SMOKE_DIR/v2-pipelined-w8.json" "$TRACE_SMOKE_DIR/v2-pipelined-w8-rerun.json"
diff "$TRACE_SMOKE_DIR/v1-serial-w1.json" "$TRACE_SMOKE_DIR/v2-pipelined-w1.json"
diff "$TRACE_SMOKE_DIR/v1-serial-w8.json" "$TRACE_SMOKE_DIR/v2-pipelined-w8.json"
diff "$TRACE_SMOKE_DIR/v1-serial-w1.json" "$TRACE_SMOKE_DIR/v1-serial-w8.json"
rm -rf "$TRACE_SMOKE_DIR"

# Smoke-run the substrate bench: gates on panics/divergence (both
# detector variants must agree), never on perf — CI boxes are too noisy.
echo "==> bench_substrate --smoke"
cargo run --release -q -p ddrace-bench --bin bench_substrate -- --smoke

# Smoke-run the native-monitor bench: the binary itself gates on the
# engines reporting identical racy keys and on the sharded engine not
# being slower than the single lock at 8+ threads; perf acceptance
# (the >= 4x speedup) is judged only on full release runs, never in CI.
# DDRACE_BENCH_OUT opts the smoke run into writing JSON so the schema
# stays checkable here.
echo "==> bench_native --smoke"
NATIVE_SMOKE_DIR=$(mktemp -d)
DDRACE_BENCH_OUT="$NATIVE_SMOKE_DIR/bench_native.json" \
    cargo run --release -q -p ddrace-bench --bin bench_native -- --smoke
for key in '"bench"' '"workload"' '"threads"' '"acceptance"' \
    '"events_per_sec"' '"speedup_8"' '"speedup_64"'; do
    grep -q "$key" "$NATIVE_SMOKE_DIR/bench_native.json" \
        || { echo "bench_native.json missing $key"; exit 1; }
done
rm -rf "$NATIVE_SMOKE_DIR"

# Smoke-run the trace-ingest bench: the binary itself gates on every
# (format × engine) pair replaying to the byte-identical RunResult and
# on the planted race being detected; perf acceptance (the >= 4x
# speedup) is judged only on full release runs, never in CI.
# DDRACE_BENCH_OUT opts the smoke run into writing JSON so the schema
# stays checkable here.
echo "==> bench_trace --smoke"
TRACE_BENCH_DIR=$(mktemp -d)
DDRACE_BENCH_OUT="$TRACE_BENCH_DIR/bench_trace.json" \
    cargo run --release -q -p ddrace-bench --bin bench_trace -- --smoke
for key in '"bench"' '"workload"' '"sizes"' '"acceptance"' '"events_per_sec"' \
    '"bytes_v1"' '"bytes_v2"' '"speedup_slab"' '"speedup_pipelined"'; do
    grep -q "$key" "$TRACE_BENCH_DIR/bench_trace.json" \
        || { echo "bench_trace.json missing $key"; exit 1; }
done
rm -rf "$TRACE_BENCH_DIR"

echo "CI green."
